"""Arrival-time planning: the paper's Ch 6 kinematic equations.

Given a vehicle ``DE`` metres from the stop line travelling at
``v_init``, the IM must pick a time of arrival ``ToA`` and a target
velocity ``VT`` that the vehicle can actually realise:

* :func:`earliest_arrival_time` — the ``EToA`` bound of Ch 6: accelerate
  at ``a_max`` to ``v_max``, then cruise.  ``EToA = T_acc + (DE - dX) /
  v_max`` with ``T_acc = (v_max - v_init) / a_max`` and
  ``dX = 0.5 a_max T_acc^2 + v_init T_acc``.
* :func:`latest_arrival_time` — the dual bound when the vehicle slows to
  a crawl speed as early as possible (infinite if the crawl speed is 0,
  because the vehicle can simply park and wait).
* :func:`solve_cruise_velocity` — invert the two-phase (speed-change
  then cruise) profile: find the cruise velocity that makes the vehicle
  arrive exactly at a requested ``ToA``.
* :func:`plan_arrival` — full planner used by Crossroads.  Produces
  either a two-phase cruise plan, or (when the protocol can express a
  timed launch) a stop-and-go plan — brake to rest immediately, wait,
  launch at full acceleration — when the assigned slot is later than
  any acceptable cruise speed allows.
* :func:`vt_plan` / :func:`solve_vt_for_toa` — the plain VT-IM
  manoeuvre "accelerate to VT and maintain": the speed change may
  finish *inside* the box (a stopped vehicle at the line launches
  straight through), and the solver inverts arrival time over VT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.kinematics.profiles import MotionProfile, ProfileBuilder

__all__ = [
    "ArrivalPlan",
    "earliest_arrival_time",
    "latest_arrival_time",
    "plan_arrival",
    "solve_cruise_velocity",
    "solve_vt_for_toa",
    "vt_plan",
]

_EPS = 1e-9


def _check_inputs(distance: float, v_init: float, v_max: float, a_max: float) -> None:
    if distance < 0:
        raise ValueError("distance must be non-negative")
    if v_init < 0:
        raise ValueError("v_init must be non-negative")
    if v_max <= 0:
        raise ValueError("v_max must be positive")
    if a_max <= 0:
        raise ValueError("a_max must be positive")
    if v_init > v_max + 1e-6:
        raise ValueError(f"v_init={v_init} exceeds v_max={v_max}")


def earliest_arrival_time(
    distance: float, v_init: float, v_max: float, a_max: float
) -> float:
    """Minimum time to cover ``distance`` (paper's ``EToA``, relative).

    The vehicle accelerates at ``a_max`` until ``v_max`` and then holds.
    If ``distance`` is shorter than the acceleration run the answer is
    the root of the quadratic ``0.5 a t^2 + v_init t = distance``.
    """
    _check_inputs(distance, v_init, v_max, a_max)
    if distance < _EPS:
        return 0.0
    t_acc = (v_max - min(v_init, v_max)) / a_max
    dx = 0.5 * a_max * t_acc ** 2 + v_init * t_acc
    if dx >= distance:
        # Never reaches v_max: accelerate the whole way.
        disc = v_init ** 2 + 2.0 * a_max * distance
        return (-v_init + math.sqrt(disc)) / a_max
    return t_acc + (distance - dx) / v_max


def latest_arrival_time(
    distance: float, v_init: float, v_crawl: float, d_max: float
) -> float:
    """Maximum arrival time while still *moving* at ``v_crawl``.

    The vehicle brakes at ``d_max`` down to ``v_crawl`` immediately and
    crawls the rest of the way.  With ``v_crawl == 0`` the vehicle can
    park, so the bound is infinite.
    """
    if v_crawl < 0:
        raise ValueError("v_crawl must be non-negative")
    if d_max <= 0:
        raise ValueError("d_max must be positive")
    if distance < 0:
        raise ValueError("distance must be non-negative")
    if v_crawl < _EPS:
        return math.inf
    v0 = max(v_init, v_crawl)
    t_dec = (v0 - v_crawl) / d_max
    dx = v0 * t_dec - 0.5 * d_max * t_dec ** 2
    if dx >= distance:
        # Cannot even slow down fully within the distance; solve the
        # deceleration-only quadratic for the crossing time.
        disc = v0 ** 2 - 2.0 * d_max * distance
        disc = max(disc, 0.0)
        return (v0 - math.sqrt(disc)) / d_max
    return t_dec + (distance - dx) / v_crawl


def _two_phase_time(
    v: float, distance: float, v_init: float, a_max: float, d_max: float
) -> Optional[float]:
    """Arrival time of speed-change-to-``v``-then-cruise, or None."""
    if v < _EPS:
        return None
    rate = a_max if v >= v_init else d_max
    t_chg = abs(v - v_init) / rate
    dx = 0.5 * (v + v_init) * t_chg
    if dx > distance + 1e-7:
        return None  # the speed change itself overshoots the line
    return t_chg + (distance - dx) / v


def solve_cruise_velocity(
    distance: float,
    v_init: float,
    t_total: float,
    a_max: float,
    d_max: float,
    v_max: float,
    v_min: float = 0.05,
    tol: float = 1e-7,
) -> Optional[float]:
    """Cruise velocity ``v`` such that the two-phase plan takes ``t_total``.

    The two-phase plan changes speed from ``v_init`` to ``v`` at the
    maximum rate and then cruises at ``v`` to the line.  Arrival time is
    strictly decreasing in ``v``, so bisection converges.  Returns
    ``None`` when no ``v`` in ``[v_min, v_max]`` fits (the caller then
    falls back to a stop-and-go plan or clamps to ``EToA``).
    """
    _check_inputs(distance, v_init, v_max, a_max)
    if d_max <= 0:
        raise ValueError("d_max must be positive")
    if not 0 < v_min <= v_max:
        raise ValueError("need 0 < v_min <= v_max")
    if t_total <= 0:
        return None

    # Highest cruise speed whose speed-change leg fits in the distance:
    # accelerating all the way reaches sqrt(v0^2 + 2 a d).
    v_reach = math.sqrt(v_init ** 2 + 2.0 * a_max * distance)
    v_hi = min(v_max, v_reach)
    t_fast = _two_phase_time(v_hi, distance, v_init, a_max, d_max)
    if t_fast is None or t_total < t_fast - 1e-9:
        return None  # even flat-out is too slow
    t_slow = _two_phase_time(v_min, distance, v_init, a_max, d_max)
    if t_slow is not None and t_total > t_slow + 1e-9:
        return None  # would need to go slower than the crawl floor
    if t_slow is None:
        # Braking to v_min overshoots the line; the feasible band is
        # narrower.  Find the slowest feasible v by bisection on
        # feasibility, then proceed.
        lo_v, hi_v = v_min, v_hi
        for _ in range(200):
            mid = 0.5 * (lo_v + hi_v)
            if _two_phase_time(mid, distance, v_init, a_max, d_max) is None:
                lo_v = mid
            else:
                hi_v = mid
        v_floor = hi_v
        t_slow = _two_phase_time(v_floor, distance, v_init, a_max, d_max)
        if t_slow is None or t_total > t_slow + 1e-9:
            return None
        lo, hi = v_floor, v_hi
    else:
        lo, hi = v_min, v_hi

    # Bisection: T(lo) >= t_total >= T(hi).
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        t_mid = _two_phase_time(mid, distance, v_init, a_max, d_max)
        if t_mid is None:
            lo = mid
            continue
        if t_mid > t_total:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class ArrivalPlan:
    """A committed approach trajectory.

    Attributes
    ----------
    profile:
        Absolute-time :class:`MotionProfile` from the plan's start
        position to the stop line (position increases towards the line).
    arrival_time:
        Absolute time at which the vehicle reaches the stop line.
    arrival_velocity:
        Velocity when crossing the stop line (the paper's ``VT``).
    stop_and_go:
        True when the plan includes a full stop and relaunch.
    """

    profile: MotionProfile
    arrival_time: float
    arrival_velocity: float
    stop_and_go: bool = False


def _cruise_plan(
    v_cruise: float,
    distance: float,
    v_init: float,
    start_time: float,
    start_position: float,
    a_max: float,
    d_max: float,
) -> ArrivalPlan:
    """Two-phase plan: change speed to ``v_cruise``, hold to the line."""
    builder = ProfileBuilder(start_time, start_position, v_init)
    builder.accelerate_to(v_cruise, a_max if v_cruise >= v_init else d_max)
    covered = builder.build().length
    builder.hold_distance(max(distance - covered, 0.0))
    profile = builder.build()
    return ArrivalPlan(
        profile=profile,
        arrival_time=profile.end_time,
        arrival_velocity=v_cruise,
        stop_and_go=False,
    )


def _stop_and_go_plan(
    distance: float,
    v_init: float,
    start_time: float,
    toa: float,
    a_max: float,
    d_max: float,
    v_max: float,
) -> Optional[ArrivalPlan]:
    """Brake to rest now, wait, launch to cross the line at ``toa``.

    Returns ``None`` when the vehicle cannot stop before the line or
    when ``toa`` comes sooner than the stop+launch takes.
    """
    horizon = toa - start_time
    t_stop = v_init / d_max
    d_stop = 0.5 * v_init ** 2 / d_max
    d_launch = distance - d_stop
    if d_launch < -1e-7:
        return None
    d_launch = max(d_launch, 0.0)
    t_launch = earliest_arrival_time(d_launch, 0.0, v_max, a_max)
    if horizon < t_stop + t_launch - 1e-6:
        return None
    launch_speed = min(v_max, math.sqrt(2.0 * a_max * d_launch)) if d_launch else 0.0
    builder = ProfileBuilder(start_time, 0.0, v_init)
    if v_init > _EPS:
        builder.accelerate_to(0.0, d_max)
    builder.wait_until(toa - t_launch)
    if d_launch > _EPS:
        builder.accelerate_to(launch_speed, a_max)
        covered = builder.build().length
        builder.hold_distance(max(distance - covered, 0.0))
    profile = builder.build()
    return ArrivalPlan(
        profile=profile,
        arrival_time=profile.end_time,
        arrival_velocity=launch_speed,
        stop_and_go=True,
    )


def plan_arrival(
    distance: float,
    v_init: float,
    start_time: float,
    toa: float,
    a_max: float,
    d_max: float,
    v_max: float,
    v_min: float = 0.05,
    start_position: float = 0.0,
    launch_below: float = 0.0,
) -> Optional[ArrivalPlan]:
    """Plan a trajectory starting at ``start_time`` that reaches the
    stop line (``start_position + distance``) exactly at ``toa``.

    Plan selection:

    1. the two-phase cruise plan, if its cruise speed is at least
       ``launch_below`` (so slow crawls are avoided when the protocol
       can express a timed launch — crawling through the box is what
       collapses throughput);
    2. otherwise stop-and-go — brake to rest immediately, wait, then
       launch at ``a_max`` timed so the line is crossed at ``toa``
       with a *fast* crossing speed;
    3. otherwise whatever cruise exists, however slow;
    4. otherwise a crawl at ``v_min`` that may arrive early (the
       narrow band between the slowest cruise and the fastest
       stop-and-go).

    ``launch_below = 0`` (the default) reproduces the plain VT-IM
    semantics where only a velocity can be commanded.  Returns ``None``
    only when ``toa`` is earlier than the kinematic bound ``EToA``.
    """
    _check_inputs(distance, v_init, v_max, a_max)
    horizon = toa - start_time
    etoa = earliest_arrival_time(distance, v_init, v_max, a_max)
    if horizon < etoa - 1e-6:
        return None

    v_cruise = solve_cruise_velocity(
        distance, v_init, horizon, a_max, d_max, v_max, v_min=v_min
    )
    if v_cruise is not None and v_cruise >= launch_below:
        return _cruise_plan(
            v_cruise, distance, v_init, start_time, start_position, a_max, d_max
        )

    if launch_below > 0.0:
        # Only a time-sensitive protocol can command "wait, then
        # launch"; a velocity-only protocol (launch_below == 0) must
        # fall through to a cruise, however slow.
        stop_go = _stop_and_go_plan(
            distance, v_init, start_time, toa, a_max, d_max, v_max
        )
        if stop_go is not None:
            profile = stop_go.profile.shifted(ds=start_position)
            return ArrivalPlan(
                profile=profile,
                arrival_time=stop_go.arrival_time,
                arrival_velocity=stop_go.arrival_velocity,
                stop_and_go=True,
            )

    if v_cruise is not None:
        return _cruise_plan(
            v_cruise, distance, v_init, start_time, start_position, a_max, d_max
        )

    # No plan can arrive as late as requested (either the narrow band
    # between the slowest cruise and the fastest stop-and-go, or the
    # vehicle physically cannot brake before the line).  Produce the
    # *latest feasible* arrival: brake toward v_min and cross wherever
    # the line is actually reached; the caller sees the early arrival
    # in ``arrival_time`` and can reject the slot.
    builder = ProfileBuilder(start_time, start_position, v_init)
    builder.accelerate_to(v_min, d_max if v_init > v_min else a_max)
    covered = builder.build().length
    builder.hold_distance(max(distance - covered, 0.0))
    profile = builder.build()
    line = start_position + distance
    arrival_time = profile.time_at_position(line)
    if arrival_time is None:
        return None
    return ArrivalPlan(
        profile=profile,
        arrival_time=arrival_time,
        arrival_velocity=profile.velocity_at(arrival_time),
        stop_and_go=False,
    )


def vt_plan(
    distance: float,
    v_init: float,
    vt: float,
    start_time: float,
    a_max: float,
    d_max: float,
    start_position: float = 0.0,
) -> Optional[ArrivalPlan]:
    """The plain VT-IM manoeuvre: "accelerate to ``vt`` and maintain".

    Unlike :func:`plan_arrival`'s two-phase cruise, the speed change is
    *not* required to finish before the stop line — a stopped vehicle
    at the line simply launches to ``vt`` straight through the box, so
    the line may be crossed mid-ramp.  ``arrival_time`` is whenever the
    front bumper reaches ``start_position + distance``;
    ``arrival_velocity`` the (possibly still-ramping) speed there.
    """
    if vt <= 0:
        return None
    if v_init < 0 or distance < 0:
        raise ValueError("v_init and distance must be non-negative")
    if a_max <= 0 or d_max <= 0:
        raise ValueError("a_max and d_max must be positive")
    builder = ProfileBuilder(start_time, start_position, v_init)
    builder.accelerate_to(vt, a_max if vt >= v_init else d_max)
    covered = builder.build().length
    if covered < distance:
        # Cover the rest explicitly so the profile always contains the
        # line (a no-op speed change would otherwise yield an empty,
        # uninvertible profile).
        builder.hold_distance(distance - covered)
    profile = builder.build()
    line = start_position + distance
    arrival_time = profile.time_at_position(line)
    if arrival_time is None:
        # Decelerating to vt stops short?  Cannot happen with vt > 0 —
        # the constant-velocity extension always reaches the line.
        return None
    return ArrivalPlan(
        profile=profile,
        arrival_time=arrival_time,
        arrival_velocity=profile.velocity_at(arrival_time),
        stop_and_go=False,
    )


def solve_vt_for_toa(
    distance: float,
    v_init: float,
    start_time: float,
    toa: float,
    a_max: float,
    d_max: float,
    v_max: float,
    v_min: float = 0.25,
    tol: float = 1e-6,
) -> Optional[ArrivalPlan]:
    """Find the VT whose :func:`vt_plan` arrives at the line at ``toa``.

    The arrival time is strictly decreasing in ``vt``, so bisection
    over ``[v_min, v_max]`` converges.  Requests earlier than the
    ``v_max`` bound are infeasible (``None``); requests later than the
    ``v_min`` bound return the ``v_min`` plan, which arrives *early* —
    callers that care (the scheduler) must check ``arrival_time``.
    """
    if not 0 < v_min <= v_max:
        raise ValueError("need 0 < v_min <= v_max")
    fast = vt_plan(distance, v_init, v_max, start_time, a_max, d_max)
    if fast is None or toa < fast.arrival_time - 1e-9:
        return None
    if toa <= fast.arrival_time + 1e-9:
        # Arrival time plateaus once the line is crossed mid-ramp (any
        # vt above the line-crossing speed arrives at the same moment);
        # prefer the fastest — shortest box occupancy wins.
        return fast
    slow = vt_plan(distance, v_init, v_min, start_time, a_max, d_max)
    if slow is not None and toa >= slow.arrival_time:
        return slow
    lo, hi = v_min, v_max  # T(lo) >= toa >= T(hi)
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        plan = vt_plan(distance, v_init, mid, start_time, a_max, d_max)
        if plan is None or plan.arrival_time > toa:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return vt_plan(distance, v_init, hi, start_time, a_max, d_max)
