"""Batched (numpy cohort) versions of the Ch 6 arrival kinematics.

The analytic engine (:mod:`repro.sim.analytic`) plans *populations* of
vehicles: every arrival needs its free-flow transit bound, and cohorts
of queued vehicles need cruise velocities solved per reassignment.
Calling the scalar solvers of :mod:`repro.kinematics.arrival` one
vehicle at a time makes the planner the hot loop; these cohort versions
answer a whole arrival array per call.

Every function is elementwise **bit-identical** to its scalar
counterpart (``tests/test_kinematics_batch.py`` pins this):

* identical IEEE-754 float64 expressions in identical order (both
  branches of each scalar ``if`` are evaluated and selected with
  :func:`numpy.where`, which is exact — selection never re-rounds);
* ``None`` / infeasible results become ``NaN`` (and ``math.inf`` stays
  ``inf``);
* :func:`solve_cruise_velocity_batch` reproduces the scalar bisection
  *including* its early-exit tolerance break, by freezing converged
  lanes with an active mask instead of breaking out of the loop.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = [
    "earliest_arrival_time_batch",
    "latest_arrival_time_batch",
    "solve_cruise_velocity_batch",
    "two_phase_time_batch",
]

_EPS = 1e-9

ArrayLike = Union[float, np.ndarray]


def _as_arrays(*values: ArrayLike) -> tuple:
    return tuple(np.asarray(v, dtype=float) for v in values)


def _check_inputs_batch(
    distance: np.ndarray,
    v_init: np.ndarray,
    v_max: np.ndarray,
    a_max: np.ndarray,
) -> None:
    if np.any(distance < 0):
        raise ValueError("distance must be non-negative")
    if np.any(v_init < 0):
        raise ValueError("v_init must be non-negative")
    if np.any(v_max <= 0):
        raise ValueError("v_max must be positive")
    if np.any(a_max <= 0):
        raise ValueError("a_max must be positive")
    if np.any(v_init > v_max + 1e-6):
        raise ValueError("v_init exceeds v_max")


def earliest_arrival_time_batch(
    distance: ArrayLike,
    v_init: ArrayLike,
    v_max: ArrayLike,
    a_max: ArrayLike,
) -> np.ndarray:
    """Vectorised :func:`repro.kinematics.arrival.earliest_arrival_time`."""
    distance, v_init, v_max, a_max = _as_arrays(distance, v_init, v_max, a_max)
    _check_inputs_batch(distance, v_init, v_max, a_max)
    t_acc = (v_max - np.minimum(v_init, v_max)) / a_max
    dx = 0.5 * a_max * t_acc ** 2 + v_init * t_acc
    disc = v_init ** 2 + 2.0 * a_max * distance
    with np.errstate(divide="ignore", invalid="ignore"):
        accel_only = (-v_init + np.sqrt(disc)) / a_max
        cruise = t_acc + (distance - dx) / v_max
        out = np.where(dx >= distance, accel_only, cruise)
    return np.where(distance < _EPS, 0.0, out)


def latest_arrival_time_batch(
    distance: ArrayLike,
    v_init: ArrayLike,
    v_crawl: ArrayLike,
    d_max: ArrayLike,
) -> np.ndarray:
    """Vectorised :func:`repro.kinematics.arrival.latest_arrival_time`.

    Parked-forever cases (``v_crawl == 0``) are ``inf``, as in the
    scalar version.
    """
    distance, v_init, v_crawl, d_max = _as_arrays(distance, v_init, v_crawl, d_max)
    if np.any(v_crawl < 0):
        raise ValueError("v_crawl must be non-negative")
    if np.any(d_max <= 0):
        raise ValueError("d_max must be positive")
    if np.any(distance < 0):
        raise ValueError("distance must be non-negative")
    v0 = np.maximum(v_init, v_crawl)
    t_dec = (v0 - v_crawl) / d_max
    dx = v0 * t_dec - 0.5 * d_max * t_dec ** 2
    disc = np.maximum(v0 ** 2 - 2.0 * d_max * distance, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        brake_only = (v0 - np.sqrt(disc)) / d_max
        crawl = t_dec + (distance - dx) / v_crawl
        out = np.where(dx >= distance, brake_only, crawl)
    return np.where(v_crawl < _EPS, np.inf, out)


def two_phase_time_batch(
    v: ArrayLike,
    distance: ArrayLike,
    v_init: ArrayLike,
    a_max: ArrayLike,
    d_max: ArrayLike,
) -> np.ndarray:
    """Vectorised :func:`repro.kinematics.arrival._two_phase_time`.

    Infeasible lanes (scalar ``None``) are ``NaN``.
    """
    v, distance, v_init, a_max, d_max = _as_arrays(v, distance, v_init, a_max, d_max)
    rate = np.where(v >= v_init, a_max, d_max)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_chg = np.abs(v - v_init) / rate
        dx = 0.5 * (v + v_init) * t_chg
        out = t_chg + (distance - dx) / v
    bad = (v < _EPS) | (dx > distance + 1e-7)
    return np.where(bad, np.nan, out)


def solve_cruise_velocity_batch(
    distance: ArrayLike,
    v_init: ArrayLike,
    t_total: ArrayLike,
    a_max: ArrayLike,
    d_max: ArrayLike,
    v_max: ArrayLike,
    v_min: float = 0.05,
    tol: float = 1e-7,
) -> np.ndarray:
    """Vectorised :func:`repro.kinematics.arrival.solve_cruise_velocity`.

    Runs the scalar algorithm's two bisections across all lanes at
    once.  The feasibility bisection (finding the slowest cruise whose
    braking leg still fits before the line) is a fixed 200 iterations
    in the scalar code, so it vectorises directly; the main bisection's
    ``hi - lo < tol`` early break is emulated by an *active mask* —
    converged lanes stop updating, exactly as if they had broken out —
    so results match the scalar solver bit for bit.  Infeasible lanes
    (scalar ``None``) are ``NaN``.
    """
    distance, v_init, t_total, a_max, d_max, v_max = _as_arrays(
        distance, v_init, t_total, a_max, d_max, v_max
    )
    _check_inputs_batch(distance, v_init, v_max, a_max)
    if np.any(d_max <= 0):
        raise ValueError("d_max must be positive")
    if not 0 < v_min <= np.min(v_max):
        raise ValueError("need 0 < v_min <= v_max")
    shape = np.broadcast_shapes(
        distance.shape, v_init.shape, t_total.shape,
        a_max.shape, d_max.shape, v_max.shape,
    )
    distance, v_init, t_total, a_max, d_max, v_max = (
        np.broadcast_to(x, shape).astype(float)
        for x in (distance, v_init, t_total, a_max, d_max, v_max)
    )

    def T(v: np.ndarray) -> np.ndarray:
        return two_phase_time_batch(v, distance, v_init, a_max, d_max)

    invalid = t_total <= 0
    v_reach = np.sqrt(v_init ** 2 + 2.0 * a_max * distance)
    v_hi = np.minimum(v_max, v_reach)
    t_fast = T(v_hi)
    invalid |= np.isnan(t_fast) | (t_total < t_fast - 1e-9)
    t_slow = T(np.full(shape, v_min))
    need_floor = np.isnan(t_slow)
    invalid |= ~need_floor & (t_total > t_slow + 1e-9)

    # Feasibility bisection for lanes whose v_min braking leg
    # overshoots the line (fixed 200 iterations, no break — runs for
    # every lane, results used only where needed).
    lo_v = np.full(shape, v_min)
    hi_v = v_hi.copy()
    for _ in range(200):
        mid = 0.5 * (lo_v + hi_v)
        mid_bad = np.isnan(T(mid))
        lo_v = np.where(mid_bad, mid, lo_v)
        hi_v = np.where(mid_bad, hi_v, mid)
    v_floor = hi_v
    t_floor = T(v_floor)
    invalid |= need_floor & (np.isnan(t_floor) | (t_total > t_floor + 1e-9))

    lo = np.where(need_floor, v_floor, np.full(shape, v_min))
    hi = v_hi.copy()

    # Main bisection: T(lo) >= t_total >= T(hi); lanes freeze once
    # hi - lo < tol (the scalar loop's break), or on invalid inputs.
    active = ~invalid
    for _ in range(200):
        if not active.any():
            break
        mid = 0.5 * (lo + hi)
        t_mid = T(mid)
        none_mid = np.isnan(t_mid)
        go_up = none_mid | (t_mid > t_total)
        lo = np.where(active & go_up, mid, lo)
        hi = np.where(active & ~go_up, mid, hi)
        # The scalar loop `continue`s past the break check when the
        # probe was infeasible, so converged-but-None lanes stay live.
        active &= none_mid | ~(hi - lo < tol)
    out = 0.5 * (lo + hi)
    return np.where(invalid, np.nan, out)
