"""Piecewise-constant-acceleration motion profiles.

A :class:`MotionProfile` is a sequence of :class:`Segment` s, each with a
constant acceleration, anchored at an absolute start time and position.
Evaluation is closed-form, so the schedulers and the micro-simulator
agree exactly about where a vehicle is at any instant — the property
Crossroads exploits (position at the execution time ``TE`` is
deterministic).

All quantities are SI: metres, seconds, m/s, m/s^2.  Profiles never
contain negative velocities (vehicles do not reverse on an approach).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "MotionProfile",
    "ProfileBuilder",
    "Segment",
    "brake_distance",
    "brake_time",
]

_EPS = 1e-9


def brake_distance(speed: float, decel: float) -> float:
    """Distance covered while braking from ``speed`` to rest at ``decel``.

    This is the "safe stop distance" of the vehicle algorithms (Ch 4):
    a vehicle that has not heard back from the IM must initiate a stop
    no later than this distance from the line.
    """
    if speed < 0:
        raise ValueError("speed must be non-negative")
    if decel <= 0:
        raise ValueError("decel must be positive")
    return speed * speed / (2.0 * decel)


def brake_time(speed: float, decel: float) -> float:
    """Time to brake from ``speed`` to rest at ``decel``."""
    if speed < 0:
        raise ValueError("speed must be non-negative")
    if decel <= 0:
        raise ValueError("decel must be positive")
    return speed / decel


@dataclass(frozen=True)
class Segment:
    """Constant-acceleration piece: ``duration`` at initial ``v0``.

    The final velocity is ``v0 + accel * duration`` and must stay
    non-negative throughout the segment.
    """

    duration: float
    v0: float
    accel: float

    def __post_init__(self):
        if self.duration < -_EPS:
            raise ValueError(f"negative duration {self.duration}")
        if self.v0 < -_EPS:
            raise ValueError(f"negative initial velocity {self.v0}")
        if self.v1 < -_EPS:
            raise ValueError(
                f"segment ends at negative velocity {self.v1:.6g} "
                f"(v0={self.v0}, a={self.accel}, T={self.duration})"
            )

    @property
    def v1(self) -> float:
        """Velocity at the end of the segment."""
        return self.v0 + self.accel * self.duration

    @property
    def length(self) -> float:
        """Distance covered by the segment."""
        return self.v0 * self.duration + 0.5 * self.accel * self.duration ** 2

    def velocity_at(self, tau: float) -> float:
        """Velocity ``tau`` seconds into the segment."""
        return self.v0 + self.accel * tau

    def position_at(self, tau: float) -> float:
        """Distance covered ``tau`` seconds into the segment."""
        return self.v0 * tau + 0.5 * self.accel * tau ** 2

    def time_at_distance(self, dist: float) -> Optional[float]:
        """First ``tau`` at which the segment has covered ``dist``.

        Returns ``None`` if the segment never covers ``dist``.
        """
        if dist <= _EPS:
            return 0.0
        if dist > self.length + _EPS:
            return None
        if abs(self.accel) < _EPS:
            if self.v0 < _EPS:
                return None
            return dist / self.v0
        # Solve 0.5*a*tau^2 + v0*tau - dist = 0 for the smallest tau >= 0.
        disc = self.v0 ** 2 + 2.0 * self.accel * dist
        if disc < 0:
            return None
        root = math.sqrt(max(disc, 0.0))
        candidates = sorted(
            tau
            for tau in ((-self.v0 + root) / self.accel, (-self.v0 - root) / self.accel)
            if -_EPS <= tau <= self.duration + _EPS
        )
        return max(candidates[0], 0.0) if candidates else None


class MotionProfile:
    """A trajectory: absolute anchor plus a list of segments.

    Beyond the final segment the profile *extends at the final velocity*
    (a vehicle that finished its plan keeps cruising); before the anchor
    it extends backwards at the initial velocity.  This makes profile
    evaluation total in time, which simplifies conflict checking.
    """

    def __init__(self, start_time: float, start_position: float, segments: Sequence[Segment]):
        self.start_time = float(start_time)
        self.start_position = float(start_position)
        self.segments: List[Segment] = list(segments)
        # Precompute cumulative boundaries.
        self._times = [self.start_time]
        self._positions = [self.start_position]
        for seg in self.segments:
            self._times.append(self._times[-1] + seg.duration)
            self._positions.append(self._positions[-1] + seg.length)

    # -- bounds -----------------------------------------------------------
    @property
    def end_time(self) -> float:
        """Absolute time at which the last segment ends."""
        return self._times[-1]

    @property
    def end_position(self) -> float:
        """Position at :attr:`end_time`."""
        return self._positions[-1]

    @property
    def duration(self) -> float:
        """Total planned duration."""
        return self.end_time - self.start_time

    @property
    def length(self) -> float:
        """Total planned distance."""
        return self.end_position - self.start_position

    @property
    def initial_velocity(self) -> float:
        return self.segments[0].v0 if self.segments else 0.0

    @property
    def final_velocity(self) -> float:
        return self.segments[-1].v1 if self.segments else 0.0

    # -- evaluation ---------------------------------------------------------
    def _locate(self, t: float) -> int:
        """Index of the segment containing absolute time ``t``."""
        lo, hi = 0, len(self.segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if t < self._times[mid + 1]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def velocity_at(self, t: float) -> float:
        """Velocity at absolute time ``t`` (clamped extension outside)."""
        if not self.segments:
            return 0.0
        if t <= self.start_time:
            return self.initial_velocity
        if t >= self.end_time:
            return self.final_velocity
        i = self._locate(t)
        return self.segments[i].velocity_at(t - self._times[i])

    def position_at(self, t: float) -> float:
        """Position at absolute time ``t`` (linear extension outside)."""
        if not self.segments:
            return self.start_position
        if t <= self.start_time:
            return self.start_position + self.initial_velocity * (t - self.start_time)
        if t >= self.end_time:
            return self.end_position + self.final_velocity * (t - self.end_time)
        i = self._locate(t)
        return self._positions[i] + self.segments[i].position_at(t - self._times[i])

    def time_at_position(self, s: float) -> Optional[float]:
        """First absolute time at which the profile reaches position ``s``.

        Returns ``None`` if ``s`` is never reached (including via the
        constant-velocity extension only when the final velocity is 0).
        """
        if s <= self.start_position + _EPS:
            return self.start_time if s >= self.start_position - _EPS else None
        for i, seg in enumerate(self.segments):
            local = s - self._positions[i]
            if local <= seg.length + _EPS:
                tau = seg.time_at_distance(local)
                if tau is not None:
                    return self._times[i] + tau
        # Beyond the plan: extend at final velocity.
        v = self.final_velocity
        if v > _EPS:
            return self.end_time + (s - self.end_position) / v
        return None

    # -- transforms ---------------------------------------------------------
    def shifted(self, dt: float = 0.0, ds: float = 0.0) -> "MotionProfile":
        """A copy translated by ``dt`` in time and ``ds`` in position."""
        return MotionProfile(self.start_time + dt, self.start_position + ds, self.segments)

    def concat(self, other: "MotionProfile") -> "MotionProfile":
        """Append ``other``'s segments (must chain continuously)."""
        if abs(other.start_time - self.end_time) > 1e-6:
            raise ValueError("profiles are not time-contiguous")
        if abs(other.start_position - self.end_position) > 1e-6:
            raise ValueError("profiles are not position-contiguous")
        return MotionProfile(
            self.start_time, self.start_position, self.segments + other.segments
        )

    def sample(self, dt: float) -> "list[tuple[float, float, float]]":
        """``(t, position, velocity)`` triples every ``dt`` over the plan."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        out = []
        t = self.start_time
        while t < self.end_time + _EPS:
            out.append((t, self.position_at(t), self.velocity_at(t)))
            t += dt
        return out

    def max_velocity(self) -> float:
        """Peak velocity over the plan (at a segment boundary)."""
        if not self.segments:
            return 0.0
        return max(max(seg.v0, seg.v1) for seg in self.segments)

    def __repr__(self) -> str:
        return (
            f"MotionProfile(t0={self.start_time:.3f}, s0={self.start_position:.3f}, "
            f"{len(self.segments)} segments, T={self.duration:.3f}s, "
            f"L={self.length:.3f}m)"
        )


class ProfileBuilder:
    """Incremental construction of a :class:`MotionProfile`.

    Tracks the running velocity so each primitive only needs its own
    parameters::

        profile = (ProfileBuilder(t0=0.0, s0=0.0, v0=1.0)
                   .accelerate_to(3.0, accel=2.0)
                   .hold_for(2.0)
                   .build())
    """

    def __init__(self, t0: float, s0: float, v0: float):
        if v0 < 0:
            raise ValueError("initial velocity must be non-negative")
        self._t0 = t0
        self._s0 = s0
        self._v = v0
        self._segments: List[Segment] = []

    @property
    def velocity(self) -> float:
        """Current running velocity."""
        return self._v

    def accelerate_to(self, v_target: float, accel: float) -> "ProfileBuilder":
        """Change speed to ``v_target`` at magnitude ``accel``."""
        if accel <= 0:
            raise ValueError("accel magnitude must be positive")
        if v_target < 0:
            raise ValueError("target velocity must be non-negative")
        dv = v_target - self._v
        if abs(dv) > _EPS:
            a = math.copysign(accel, dv)
            self._segments.append(Segment(abs(dv) / accel, self._v, a))
            self._v = v_target
        return self

    def hold_for(self, duration: float) -> "ProfileBuilder":
        """Cruise at the current velocity for ``duration`` seconds."""
        if duration < -_EPS:
            raise ValueError("duration must be non-negative")
        if duration > _EPS:
            self._segments.append(Segment(duration, self._v, 0.0))
        return self

    def hold_distance(self, distance: float) -> "ProfileBuilder":
        """Cruise at the current velocity for ``distance`` metres."""
        if distance < -_EPS:
            raise ValueError("distance must be non-negative")
        if distance > _EPS:
            if self._v < _EPS:
                raise ValueError("cannot cover distance at zero velocity")
            self._segments.append(Segment(distance / self._v, self._v, 0.0))
        return self

    def wait_until(self, t_abs: float) -> "ProfileBuilder":
        """Stand still (requires v == 0) until absolute time ``t_abs``."""
        if self._v > _EPS:
            raise ValueError("wait_until requires the vehicle to be stopped")
        current_end = self._t0 + sum(s.duration for s in self._segments)
        if t_abs > current_end + _EPS:
            self._segments.append(Segment(t_abs - current_end, 0.0, 0.0))
        return self

    def build(self) -> MotionProfile:
        """Finalize into a :class:`MotionProfile`."""
        return MotionProfile(self._t0, self._s0, self._segments)
