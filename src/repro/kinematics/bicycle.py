"""Kinematic bicycle model — the paper's Eq 7.1 — with RK4 integration.

::

    x'   = v * cos(phi)
    y'   = v * sin(phi)
    phi' = (v / l) * tan(psi)

where ``(x, y)`` is the rear-axle position, ``phi`` the heading, ``v``
the speed, ``l`` the wheelbase and ``psi`` the steering angle.  The
Matlab simulators in the paper integrate exactly these equations; we use
them for 2-D traversal of the intersection box (turning movements) and
for validating that the 1-D profile abstraction is conservative.

A :class:`PurePursuitTracker` provides the steering input needed to
follow a geometric path, so a vehicle can be driven through any
:class:`repro.geometry` turn path by commanding only speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

__all__ = ["BicycleModel", "BicycleState", "PurePursuitTracker"]


@dataclass(frozen=True)
class BicycleState:
    """Instantaneous state of the bicycle model."""

    x: float
    y: float
    heading: float
    speed: float

    def position(self) -> Tuple[float, float]:
        """``(x, y)`` tuple."""
        return (self.x, self.y)


class BicycleModel:
    """RK4 integrator for the kinematic bicycle.

    Parameters
    ----------
    wheelbase:
        Distance between axles, metres (testbed Traxxas Slash: 0.335 m).
    max_steer:
        Steering-angle limit, radians.
    max_speed:
        Speed limit; commanded accelerations saturate at this speed.
    """

    def __init__(self, wheelbase: float, max_steer: float = 0.6, max_speed: float = math.inf):
        if wheelbase <= 0:
            raise ValueError("wheelbase must be positive")
        if max_steer <= 0 or max_steer >= math.pi / 2:
            raise ValueError("max_steer must be in (0, pi/2)")
        self.wheelbase = wheelbase
        self.max_steer = max_steer
        self.max_speed = max_speed

    def _derivatives(
        self, state: np.ndarray, accel: float, steer: float
    ) -> np.ndarray:
        x, y, phi, v = state
        return np.array(
            [
                v * math.cos(phi),
                v * math.sin(phi),
                (v / self.wheelbase) * math.tan(steer),
                accel,
            ]
        )

    def step(
        self, state: BicycleState, accel: float, steer: float, dt: float
    ) -> BicycleState:
        """Advance one RK4 step of length ``dt``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        steer = float(np.clip(steer, -self.max_steer, self.max_steer))
        y0 = np.array([state.x, state.y, state.heading, state.speed])
        k1 = self._derivatives(y0, accel, steer)
        k2 = self._derivatives(y0 + 0.5 * dt * k1, accel, steer)
        k3 = self._derivatives(y0 + 0.5 * dt * k2, accel, steer)
        k4 = self._derivatives(y0 + dt * k3, accel, steer)
        y1 = y0 + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        speed = float(np.clip(y1[3], 0.0, self.max_speed))
        heading = math.atan2(math.sin(y1[2]), math.cos(y1[2]))
        return BicycleState(x=float(y1[0]), y=float(y1[1]), heading=heading, speed=speed)

    def simulate(
        self,
        state: BicycleState,
        control: Callable[[float, BicycleState], Tuple[float, float]],
        duration: float,
        dt: float = 0.01,
    ) -> List[Tuple[float, BicycleState]]:
        """Integrate under a ``control(t, state) -> (accel, steer)`` law.

        Returns ``(t, state)`` samples including both endpoints.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        samples = [(0.0, state)]
        t = 0.0
        while t < duration - 1e-12:
            h = min(dt, duration - t)
            accel, steer = control(t, state)
            state = self.step(state, accel, steer, h)
            t += h
            samples.append((t, state))
        return samples


class PurePursuitTracker:
    """Pure-pursuit steering along a polyline path.

    Parameters
    ----------
    path:
        ``(N, 2)`` array of waypoints with monotonically increasing arc
        length; the vehicle chases a point ``lookahead`` metres ahead of
        its projection onto the path.
    lookahead:
        Chase distance, metres.
    wheelbase:
        Same wheelbase as the model being steered.
    """

    def __init__(self, path: np.ndarray, lookahead: float, wheelbase: float):
        path = np.asarray(path, dtype=float)
        if path.ndim != 2 or path.shape[1] != 2 or len(path) < 2:
            raise ValueError("path must be an (N>=2, 2) array")
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self.path = path
        self.lookahead = lookahead
        self.wheelbase = wheelbase
        seg = np.diff(path, axis=0)
        self._cumlen = np.concatenate([[0.0], np.cumsum(np.hypot(seg[:, 0], seg[:, 1]))])

    @property
    def length(self) -> float:
        """Total path arc length."""
        return float(self._cumlen[-1])

    def point_at(self, s: float) -> np.ndarray:
        """Point on the path at arc length ``s`` (clamped to ends)."""
        s = float(np.clip(s, 0.0, self.length))
        i = int(np.searchsorted(self._cumlen, s, side="right")) - 1
        i = min(max(i, 0), len(self.path) - 2)
        seg_len = self._cumlen[i + 1] - self._cumlen[i]
        frac = 0.0 if seg_len <= 0 else (s - self._cumlen[i]) / seg_len
        return self.path[i] + frac * (self.path[i + 1] - self.path[i])

    def project(self, x: float, y: float) -> float:
        """Arc length of the closest path point to ``(x, y)``."""
        p = np.array([x, y])
        best_s, best_d = 0.0, math.inf
        for i in range(len(self.path) - 1):
            a, b = self.path[i], self.path[i + 1]
            ab = b - a
            denom = float(ab @ ab)
            t = 0.0 if denom <= 0 else float(np.clip((p - a) @ ab / denom, 0.0, 1.0))
            q = a + t * ab
            d = float(np.hypot(*(p - q)))
            if d < best_d:
                best_d = d
                best_s = self._cumlen[i] + t * math.sqrt(denom)
        return best_s

    def steering(self, state: BicycleState) -> float:
        """Pure-pursuit steering angle for the current state."""
        s = self.project(state.x, state.y)
        target = self.point_at(s + self.lookahead)
        dx = target[0] - state.x
        dy = target[1] - state.y
        # Angle of the chase point in the vehicle frame.
        alpha = math.atan2(dy, dx) - state.heading
        alpha = math.atan2(math.sin(alpha), math.cos(alpha))
        ld = math.hypot(dx, dy)
        if ld < 1e-9:
            return 0.0
        return math.atan2(2.0 * self.wheelbase * math.sin(alpha), ld)

    def cross_track_error(self, state: BicycleState) -> float:
        """Distance from the vehicle to the path."""
        s = self.project(state.x, state.y)
        q = self.point_at(s)
        return float(math.hypot(state.x - q[0], state.y - q[1]))
