"""Per-figure report builders.

Each function turns raw run results into the (headers, rows) pair that
the corresponding paper artefact shows, so benches and examples print
consistent tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import geometric_mean
from repro.sim.metrics import SimResult

__all__ = [
    "flow_sweep_rows",
    "overhead_rows",
    "scenario_rows",
    "speedup_summary",
]


def scenario_rows(
    per_scenario: "Dict[str, Dict[str, SimResult]]",
) -> Tuple[List[str], List[list]]:
    """Fig 7.1 shape: one row per scenario, one column per policy.

    ``per_scenario`` maps scenario name -> {policy: result}.
    """
    policies = sorted({p for results in per_scenario.values() for p in results})
    headers = ["scenario"] + [f"{p} avg wait (s)" for p in policies] + ["best"]
    rows = []
    for name, results in per_scenario.items():
        delays = [results[p].average_delay if p in results else float("nan") for p in policies]
        best = policies[min(range(len(policies)), key=lambda i: delays[i])]
        rows.append([name, *delays, best])
    return headers, rows


def flow_sweep_rows(
    sweep: "Dict[str, list]",
) -> Tuple[List[str], List[list]]:
    """Fig 7.2 shape: one row per flow rate, throughput per policy.

    ``sweep`` maps policy -> list of FlowPoint.
    """
    policies = sorted(sweep)
    flows = sorted({p.flow_rate for points in sweep.values() for p in points})
    headers = ["flow (car/lane/s)"] + [f"{p} thr" for p in policies]
    by_key = {
        (policy, point.flow_rate): point
        for policy, points in sweep.items()
        for point in points
    }
    rows = []
    for flow in flows:
        row = [flow]
        for policy in policies:
            point = by_key.get((policy, flow))
            row.append(point.throughput if point else float("nan"))
        rows.append(row)
    return headers, rows


def overhead_rows(
    sweep: "Dict[str, list]",
) -> Tuple[List[str], List[list]]:
    """Ch 7.2 overhead: compute seconds and messages per policy/flow."""
    policies = sorted(sweep)
    headers = ["flow"] + [f"{p} compute (s)" for p in policies] + [
        f"{p} msgs" for p in policies
    ]
    flows = sorted({p.flow_rate for points in sweep.values() for p in points})
    by_key = {
        (policy, point.flow_rate): point
        for policy, points in sweep.items()
        for point in points
    }
    rows = []
    for flow in flows:
        row = [flow]
        for policy in policies:
            point = by_key.get((policy, flow))
            row.append(point.compute_time if point else float("nan"))
        for policy in policies:
            point = by_key.get((policy, flow))
            row.append(point.messages if point else float("nan"))
        rows.append(row)
    return headers, rows


def speedup_summary(
    sweep: "Dict[str, list]",
    subject: str = "crossroads",
    metric: str = "throughput",
) -> Dict[str, Dict[str, float]]:
    """Worst-case and average ratios of ``subject`` over each baseline.

    Mirrors the paper's headline numbers ("1.62X better than VT-IM in
    worst case and 1.36X in average").  The "worst case" is the
    *largest* advantage over the sweep (the flow where the baseline
    suffers most), the average is the geometric mean over flows.
    """
    if subject not in sweep:
        raise ValueError(f"subject {subject!r} not in sweep")
    subject_by_flow = {p.flow_rate: getattr(p, metric) for p in sweep[subject]}
    out: Dict[str, Dict[str, float]] = {}
    for baseline, points in sweep.items():
        if baseline == subject:
            continue
        ratios = []
        for point in points:
            subject_value = subject_by_flow.get(point.flow_rate)
            base_value = getattr(point, metric)
            if subject_value is None or base_value <= 0:
                continue
            ratios.append(subject_value / base_value)
        if not ratios:
            continue
        out[baseline] = {
            "worst_case": max(ratios),
            "average": geometric_mean(ratios),
            "best_case": min(ratios),
        }
    return out
