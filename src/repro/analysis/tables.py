"""Plain-text table rendering and aggregate helpers."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["format_value", "geometric_mean", "render_table"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    precision: int = 3,
    indent: str = "",
) -> str:
    """Render an aligned ASCII table (headers, separator, rows)."""
    str_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_line(cells):
        return indent + "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [fmt_line(headers), indent + "  ".join("-" * w for w in widths)]
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
