"""Terminal visualisation: sparklines, line charts, space-time diagrams.

Everything renders to plain text so results are inspectable anywhere
the test suite runs (no plotting dependencies by design).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["series_plot", "space_time_diagram", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render values as a unicode block sparkline."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if math.isclose(lo, hi):
        return _BLOCKS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5)
        out.append(_BLOCKS[idx])
    return "".join(out)


def series_plot(
    xs: Sequence[float],
    series: "Dict[str, Sequence[float]]",
    width: int = 60,
    height: int = 12,
) -> str:
    """ASCII line chart of one or more y-series over shared x values.

    Each series gets a marker character; points are plotted on a
    character grid with a y-axis scale on the left.
    """
    if not xs or not series:
        raise ValueError("xs and series must be non-empty")
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {label!r} length mismatch")
    markers = "ox+*#@%&"
    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, ys), marker in zip(series.items(), markers):
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1) + 0.5)
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1) + 0.5)
            grid[height - 1 - row][col] = marker

    lines = []
    for i, row in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y_val:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<10.3g}" + " " * max(width - 20, 0) + f"{x_hi:>10.3g}")
    legend = "   ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def space_time_diagram(
    samples: Iterable,
    lane: Optional[str] = None,
    route_length: float = 6.0,
    columns: int = 60,
    period: float = 0.5,
    line_position: float = 3.0,
) -> str:
    """Space-time diagram of traced vehicles (one row per time step).

    ``samples`` are :class:`~repro.sim.trace.TraceSample` s; pass
    ``lane`` ("N"/"E"/"S"/"W") to restrict to one approach.  Position
    runs left-to-right (0 = transmission line); the stop line is drawn
    as ``|``; each vehicle prints the last digit of its id.
    """
    rows: Dict[int, Dict[int, str]] = {}
    for s in samples:
        if lane is not None and not s.movement_key.startswith(lane):
            continue
        step = int(round(s.time / period))
        col = int(min(max(s.position / route_length, 0.0), 1.0) * (columns - 1))
        rows.setdefault(step, {})[col] = str(s.vehicle_id % 10)
    if not rows:
        return "(no samples)"
    line_col = int(line_position / route_length * (columns - 1))
    out = []
    for step in range(min(rows), max(rows) + 1):
        cells = rows.get(step, {})
        chars = []
        for col in range(columns):
            if col in cells:
                chars.append(cells[col])
            elif col == line_col:
                chars.append("|")
            else:
                chars.append("·")
        out.append(f"t={step * period:6.1f}s  " + "".join(chars))
    return "\n".join(out)
