"""Result analysis and plain-text reporting.

The benchmark harness prints the same rows/series the paper's figures
show; this package holds the shared machinery — ASCII tables, ratio
and aggregate helpers, and per-figure report builders.
"""

from repro.analysis.report import (
    flow_sweep_rows,
    overhead_rows,
    scenario_rows,
    speedup_summary,
)
from repro.analysis.tables import format_value, geometric_mean, render_table
from repro.analysis.viz import series_plot, space_time_diagram, sparkline

__all__ = [
    "flow_sweep_rows",
    "format_value",
    "geometric_mean",
    "overhead_rows",
    "render_table",
    "scenario_rows",
    "series_plot",
    "space_time_diagram",
    "sparkline",
    "speedup_summary",
]
