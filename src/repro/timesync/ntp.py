"""NTP four-timestamp offset/delay estimation (Mills 1991).

An NTP exchange produces four timestamps:

* ``t0`` — client clock when the request leaves,
* ``t1`` — server clock when the request arrives,
* ``t2`` — server clock when the reply leaves,
* ``t3`` — client clock when the reply arrives.

The classic estimators are::

    theta = ((t1 - t0) + (t2 - t3)) / 2       # server minus client: the
                                              # correction to ADD to the
                                              # client clock
    delay = (t3 - t0) - (t2 - t1)             # round-trip network time

The offset estimate is exact when the path is symmetric; its error is
bounded by half the delay asymmetry, so NTP clients keep the sample with
the *smallest* round-trip delay.  :class:`NtpClient` implements that
filter and drives a :class:`~repro.timesync.clock.Clock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.timesync.clock import Clock

__all__ = ["NtpClient", "NtpSample", "ntp_delay", "ntp_offset", "sync_buffer"]


def ntp_offset(t0: float, t1: float, t2: float, t3: float) -> float:
    """Estimated server-minus-client offset (theta) from one exchange.

    This is the correction the client must *add* to its clock.
    """
    return ((t1 - t0) + (t2 - t3)) / 2.0


def ntp_delay(t0: float, t1: float, t2: float, t3: float) -> float:
    """Round-trip network delay (server turnaround excluded)."""
    return (t3 - t0) - (t2 - t1)


def sync_buffer(sync_error: float, speed: float) -> float:
    """Safety-buffer length a residual sync error costs at ``speed``.

    Paper Ch 3.2: a 1 ms NTP error at the 3 m/s top speed adds 3 mm.
    """
    if sync_error < 0 or speed < 0:
        raise ValueError("sync_error and speed must be non-negative")
    return sync_error * speed


@dataclass(frozen=True)
class NtpSample:
    """One completed NTP exchange."""

    t0: float
    t1: float
    t2: float
    t3: float

    @property
    def offset(self) -> float:
        """Estimated client-minus-server offset for this sample."""
        return ntp_offset(self.t0, self.t1, self.t2, self.t3)

    @property
    def delay(self) -> float:
        """Round-trip delay for this sample."""
        return ntp_delay(self.t0, self.t1, self.t2, self.t3)

    @property
    def error_bound(self) -> float:
        """Worst-case offset-estimate error: half the round-trip delay."""
        return abs(self.delay) / 2.0


class NtpClient:
    """Minimum-delay NTP sample filter bound to a local clock.

    Feed completed exchanges with :meth:`add_sample`; :meth:`synchronize`
    steps the clock by the best (minimum-delay) sample's offset, which is
    exactly what the testbed's sync state does once per approach.
    """

    def __init__(self, clock: Clock, max_samples: int = 8):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.clock = clock
        self.max_samples = max_samples
        self._samples: List[NtpSample] = []

    @property
    def samples(self) -> List[NtpSample]:
        """Collected samples, oldest first."""
        return list(self._samples)

    @property
    def best(self) -> Optional[NtpSample]:
        """Sample with the smallest round-trip delay, if any."""
        if not self._samples:
            return None
        return min(self._samples, key=lambda s: s.delay)

    def add_sample(self, sample: NtpSample) -> None:
        """Record one exchange, keeping at most ``max_samples``."""
        self._samples.append(sample)
        if len(self._samples) > self.max_samples:
            self._samples.pop(0)

    def synchronize(self) -> float:
        """Step the clock by the best sample's offset.

        Returns the applied correction.  Raises if no samples were added.
        """
        best = self.best
        if best is None:
            raise RuntimeError("synchronize() before any NTP sample")
        self.clock.step(best.offset)
        return best.offset

    def residual_error_bound(self) -> float:
        """Worst-case post-sync error (half best round-trip delay)."""
        best = self.best
        if best is None:
            raise RuntimeError("no NTP samples collected")
        return best.error_bound
