"""Clock models and NTP-style time synchronisation (paper Ch 3.2).

The scale-model testbed is a distributed system: each vehicle has its own
crystal (offset + drift) and synchronises to the IM with NTP.  The paper
measures a 1 ms residual synchronisation error, which at the 3 m/s top
speed contributes 3 mm to the longitudinal safety buffer.

This package provides:

* :class:`Clock` — a local clock with constant offset, linear drift and
  read jitter, mapping true (simulation) time to local time.
* :func:`ntp_offset` / :func:`ntp_delay` — the classic four-timestamp
  NTP estimators (Mills 1991).
* :class:`NtpClient` — repeated-exchange client logic: keeps the sample
  with the smallest round-trip delay (the standard NTP filter) and steps
  the local clock.
* :func:`sync_buffer` — converts a residual sync error into the buffer
  length it costs at a given speed.
"""

from repro.timesync.clock import Clock
from repro.timesync.ntp import NtpClient, NtpSample, ntp_delay, ntp_offset, sync_buffer

__all__ = [
    "Clock",
    "NtpClient",
    "NtpSample",
    "ntp_delay",
    "ntp_offset",
    "sync_buffer",
]
