"""Local clock model: offset + linear drift + read jitter.

A node's clock reading at true time ``t`` is::

    local(t) = t + offset + drift * (t - epoch) + jitter

``drift`` is dimensionless (seconds of error per second of true time;
crystal oscillators are typically within +-50 ppm, i.e. ``5e-5``).
``jitter`` models read/readout quantisation noise and is redrawn on every
read, so it does not accumulate.

Corrections (from NTP) *step* the offset; we do not model slewing because
the testbed protocol syncs once per intersection approach, before any
command is issued.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Clock"]


class Clock:
    """A drifting local clock.

    Parameters
    ----------
    offset:
        Initial offset from true time, in seconds.
    drift:
        Fractional frequency error (dimensionless, e.g. ``20e-6`` for
        20 ppm fast).
    jitter_std:
        Standard deviation of per-read gaussian noise, seconds.
    epoch:
        True time at which the drift term is zero.
    rng:
        Numpy random generator for jitter (a fresh default generator is
        created if omitted, but passing one keeps runs reproducible).
    """

    def __init__(
        self,
        offset: float = 0.0,
        drift: float = 0.0,
        jitter_std: float = 0.0,
        epoch: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")
        self.offset = float(offset)
        self.drift = float(drift)
        self.jitter_std = float(jitter_std)
        self.epoch = float(epoch)
        self._rng = rng if rng is not None else np.random.default_rng()

    def read(self, true_time: float) -> float:
        """Local time shown by this clock at ``true_time``."""
        jitter = self._rng.normal(0.0, self.jitter_std) if self.jitter_std else 0.0
        return true_time + self.offset + self.drift * (true_time - self.epoch) + jitter

    def error(self, true_time: float) -> float:
        """Deterministic clock error (excludes read jitter)."""
        return self.offset + self.drift * (true_time - self.epoch)

    def step(self, correction: float) -> None:
        """Apply an NTP-style step: *add* ``correction`` to the clock.

        NTP's theta estimate is the amount the client clock must be
        advanced to match the server, so a sync applies ``step(theta)``.
        """
        self.offset += float(correction)

    def worst_case_error(self, true_time: float, horizon: float) -> float:
        """Bound on |error| over ``[true_time, true_time + horizon]``.

        Includes 3-sigma read jitter; used to size the sync component of
        the safety buffer.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        at_start = abs(self.error(true_time))
        at_end = abs(self.error(true_time + horizon))
        return max(at_start, at_end) + 3.0 * self.jitter_std

    def __repr__(self) -> str:
        return (
            f"Clock(offset={self.offset:.6g}, drift={self.drift:.3g}, "
            f"jitter_std={self.jitter_std:.3g})"
        )
