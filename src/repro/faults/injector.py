"""The per-channel fault decision engine.

One :class:`FaultInjector` is consulted by the channel for every
transmission.  It owns a **private** RNG stream (never the channel's):
a zeroed :class:`~repro.faults.schedule.FaultConfig` therefore consumes
no channel randomness and the simulation stays bit-identical to the
fault-free path — the property the differential regression test pins.

The injector also keeps an append-only event trace ``(time, kind,
seq)`` of every fault it injected.  Because the trace is a pure
function of ``(config, seed, traffic)``, two runs with the same seed
and schedule produce the identical trace — which is what makes chaos
runs *replayable* (a failing property-test seed can be re-run and
re-observed exactly).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.models import (
    DelaySpikes,
    Duplication,
    GilbertElliottLoss,
    ReorderJitter,
)
from repro.faults.schedule import FaultConfig

__all__ = ["FaultInjector", "TransmitVerdict"]

#: Cap on the retained event trace (counters keep counting past it).
_MAX_TRACE = 200_000


class TransmitVerdict:
    """Outcome of one transmission's fault evaluation."""

    __slots__ = ("drop_reason", "extra_delay", "duplicate_delay")

    def __init__(
        self,
        drop_reason: Optional[str] = None,
        extra_delay: float = 0.0,
        duplicate_delay: Optional[float] = None,
    ):
        #: None = deliver; otherwise the loss reason ("burst"/"blackout").
        self.drop_reason = drop_reason
        #: Seconds added on top of the channel's sampled delay.
        self.extra_delay = extra_delay
        #: Extra delay of an injected duplicate copy (None = no copy).
        self.duplicate_delay = duplicate_delay


class FaultInjector:
    """Evaluates the fault models for each message, deterministically.

    Parameters
    ----------
    config:
        The fault configuration (may be null; then the injector never
        alters a message and never draws randomness).
    rng:
        Private generator.  Must not be shared with the channel.
    im_address:
        Address of the IM radio, used to classify message direction
        for direction-filtered fault windows.
    """

    def __init__(
        self,
        config: FaultConfig,
        rng: Optional[np.random.Generator] = None,
        im_address: str = "IM",
    ):
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng()
        self.im_address = im_address
        self.ge = GilbertElliottLoss(
            config.ge_p_good_bad,
            config.ge_p_bad_good,
            config.ge_loss_good,
            config.ge_loss_bad,
        )
        self.spikes = DelaySpikes(
            config.spike_prob, config.spike_low, config.spike_high
        )
        self.dup = Duplication(config.dup_prob, config.dup_jitter)
        self.reorder = ReorderJitter(
            config.reorder_prob, config.reorder_jitter
        )
        self.schedule = config.schedule
        #: Injected-fault counters by kind.
        self.counts: Counter = Counter()
        #: Append-only ``(time, kind, seq)`` trace (capped; see module).
        self.events: List[Tuple[float, str, int]] = []

    # -- bookkeeping -------------------------------------------------------
    def _note(self, now: float, kind: str, seq: int) -> None:
        self.counts[kind] += 1
        if len(self.events) < _MAX_TRACE:
            self.events.append((now, kind, seq))

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the injected-fault counters."""
        return {kind: int(n) for kind, n in sorted(self.counts.items())}

    # -- the per-transmission hook ----------------------------------------
    def on_transmit(self, message, now: float) -> TransmitVerdict:
        """Evaluate every fault model for one message.

        The evaluation order (burst loss, blackout, spike, duplication,
        reordering) is fixed, and each model draws from the private RNG
        only while enabled, so traces replay exactly for a given
        ``(config, seed)``.
        """
        to_im = message.receiver == self.im_address
        verdict = TransmitVerdict()
        # 1. Correlated burst loss (state advances even for messages a
        #    later rule would drop — the channel state does not care).
        if self.ge.enabled or self.schedule.active(now, "burst", to_im):
            if self.schedule.active(now, "burst", to_im):
                self.ge.force_bad()
            if self.ge.step(self.rng):
                self._note(now, "burst_loss", message.seq)
                verdict.drop_reason = "burst"
                return verdict
        # 2. Scripted radio-dark windows.
        if self.schedule.active(now, "blackout", to_im):
            self._note(now, "blackout_loss", message.seq)
            verdict.drop_reason = "blackout"
            return verdict
        # 3. Delay spikes past the assumed worst case.
        if self.spikes.enabled or self.schedule.active(now, "spike", to_im):
            forced = self.schedule.active(now, "spike", to_im)
            extra = self.spikes.sample(self.rng, forced=forced)
            if forced and extra <= 0.0:
                # A spike window with a zeroed spike model still spikes:
                # use the window as "at least 2x the preset low bound".
                extra = float(self.rng.uniform(0.05, 0.30))
            if extra > 0.0:
                self._note(now, "delay_spike", message.seq)
                verdict.extra_delay += extra
        # 4. Duplication.
        if self.dup.enabled:
            dup_delay = self.dup.sample(self.rng)
            if dup_delay >= 0.0:
                self._note(now, "duplicate", message.seq)
                verdict.duplicate_delay = dup_delay
        # 5. Reordering jitter (small, sub-bound).
        if self.reorder.enabled:
            jitter = self.reorder.sample(self.rng)
            if jitter > 0.0:
                self._note(now, "reorder", message.seq)
                verdict.extra_delay += jitter
        return verdict
