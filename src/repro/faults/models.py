"""Per-message stochastic fault processes.

Each model is a small, explicitly-seeded state machine with a
``sample``-style method the :class:`~repro.faults.injector.FaultInjector`
calls once per transmission.  All randomness comes from the generator
passed in by the caller (the injector's private stream), never from the
channel's, so enabling a model with zero probabilities perturbs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DelaySpikes",
    "Duplication",
    "GilbertElliottLoss",
    "ReorderJitter",
]


class GilbertElliottLoss:
    """Two-state (good/bad) Markov loss process — correlated bursts.

    The classic Gilbert–Elliott channel: each transmission first makes
    a state transition (good→bad with ``p_good_bad``, bad→good with
    ``p_bad_good``), then is lost with the state's loss probability.
    Mean burst length is ``1 / p_bad_good`` messages; i.i.d. loss is the
    degenerate case ``p_good_bad = 1, p_bad_good = 1``.

    Parameters
    ----------
    p_good_bad, p_bad_good:
        Per-message state-transition probabilities.
    loss_good, loss_bad:
        Loss probability while in each state.
    """

    def __init__(
        self,
        p_good_bad: float,
        p_bad_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for name, p in (
            ("p_good_bad", p_good_bad),
            ("p_bad_good", p_bad_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    @property
    def enabled(self) -> bool:
        """False when the process can never lose a message."""
        return (self.loss_good > 0.0) or (
            self.loss_bad > 0.0 and self.p_good_bad > 0.0
        )

    def force_bad(self) -> None:
        """Clamp into the bad state (used by scripted burst windows)."""
        self.bad = True

    def step(self, rng: np.random.Generator) -> bool:
        """Advance one message; return True when it is lost.

        Draws exactly two uniforms per call (transition, loss) so the
        consumed-randomness count is independent of the outcome —
        keeping event traces replayable across schedule variations.
        """
        transition = rng.random()
        if self.bad:
            if transition < self.p_bad_good:
                self.bad = False
        else:
            if transition < self.p_good_bad:
                self.bad = True
        loss_p = self.loss_bad if self.bad else self.loss_good
        return rng.random() < loss_p


@dataclass
class DelaySpikes:
    """Occasional extra delay *beyond* the channel's assumed bound.

    With probability ``prob`` a message receives an additional delay
    uniform in ``[low, high]`` seconds on top of whatever the channel's
    :class:`~repro.network.delay.DelayModel` sampled.  Because the
    delay model clips at ``worst_case``, any positive spike pushes the
    total past the bound the protocols assume — the regime the WC-RTD
    math does *not* cover.
    """

    prob: float
    low: float
    high: float

    def __post_init__(self):
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        if not 0.0 <= self.low <= self.high:
            raise ValueError("need 0 <= low <= high")

    @property
    def enabled(self) -> bool:
        return self.prob > 0.0 and self.high > 0.0

    def sample(self, rng: np.random.Generator, forced: bool = False) -> float:
        """Extra delay for one message (0.0 when no spike fires)."""
        if forced or rng.random() < self.prob:
            return float(rng.uniform(self.low, self.high))
        return 0.0


@dataclass
class Duplication:
    """Per-message duplication (e.g. MAC-level retransmit after a lost
    ack): with probability ``prob`` a second copy of the message is
    delivered ``jitter``-uniform seconds after the first."""

    prob: float
    jitter: float = 0.005

    def __post_init__(self):
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.prob > 0.0

    def sample(self, rng: np.random.Generator) -> float:
        """Extra delay of the duplicate copy, or a negative sentinel
        when no duplicate is injected."""
        if rng.random() < self.prob:
            return float(rng.uniform(0.0, self.jitter))
        return -1.0


@dataclass
class ReorderJitter:
    """Sub-bound jitter that swaps adjacent deliveries.

    With probability ``prob`` a message receives extra delay uniform in
    ``[0, max_jitter]`` — small enough to stay near the bound but large
    enough to overtake a later message, breaking any implicit FIFO
    assumption in the protocols.
    """

    prob: float
    max_jitter: float = 0.005

    def __post_init__(self):
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        if self.max_jitter < 0:
            raise ValueError("max_jitter must be non-negative")

    @property
    def enabled(self) -> bool:
        return self.prob > 0.0 and self.max_jitter > 0.0

    def sample(self, rng: np.random.Generator) -> float:
        if rng.random() < self.prob:
            return float(rng.uniform(0.0, self.max_jitter))
        return 0.0
