"""Scripted fault windows and the top-level fault configuration.

A :class:`FaultWindow` activates one fault kind over a simulated-time
interval ("IM radio dark from t=40 to t=45"); a :class:`FaultSchedule`
composes windows.  :class:`FaultConfig` bundles the stochastic model
parameters with a schedule, knows when it is a no-op (:meth:`is_null`),
and parses the CLI's ``run --faults`` spec strings.

Everything here is frozen/hashable and picklable: fault configurations
ride inside :class:`~repro.sim.world.WorldConfig` into the parallel
runner's worker processes, and determinism across ``--jobs`` requires
the config to be pure data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Tuple

import numpy as np

__all__ = [
    "FaultConfig",
    "FaultSchedule",
    "FaultWindow",
    "random_fault_config",
]

#: Window kinds and what they force while active.
WINDOW_KINDS = (
    "blackout",  # drop every matching message
    "burst",     # clamp the Gilbert–Elliott process into its bad state
    "spike",     # every matching message gets a delay spike
)

#: Traffic directions a window can select.
DIRECTIONS = ("both", "to_im", "from_im")


@dataclass(frozen=True)
class FaultWindow:
    """One scripted fault interval ``[start, end)``."""

    start: float
    end: float
    kind: str = "blackout"
    direction: str = "both"

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("window end must exceed start")
        if self.kind not in WINDOW_KINDS:
            raise ValueError(f"kind must be one of {WINDOW_KINDS}")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")

    def active(self, now: float, to_im: bool) -> bool:
        """True when ``now`` falls in the window and the direction
        (``to_im`` = message addressed to the IM) matches."""
        if not self.start <= now < self.end:
            return False
        if self.direction == "both":
            return True
        return self.direction == ("to_im" if to_im else "from_im")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable composition of :class:`FaultWindow` s."""

    windows: Tuple[FaultWindow, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "windows", tuple(self.windows))

    def active(self, now: float, kind: str, to_im: bool) -> bool:
        """True when any ``kind`` window covers ``(now, direction)``."""
        return any(
            w.kind == kind and w.active(now, to_im) for w in self.windows
        )

    @property
    def horizon(self) -> float:
        """Latest window end (0.0 for an empty schedule)."""
        return max((w.end for w in self.windows), default=0.0)

    def __bool__(self) -> bool:
        return bool(self.windows)


@dataclass(frozen=True)
class FaultConfig:
    """All fault-injection knobs, zeroed by default (a no-op).

    Attributes
    ----------
    ge_p_good_bad, ge_p_bad_good, ge_loss_good, ge_loss_bad:
        Gilbert–Elliott burst-loss parameters (see
        :class:`~repro.faults.models.GilbertElliottLoss`).
    spike_prob, spike_low, spike_high:
        Delay spikes *beyond* the channel's worst-case bound, seconds.
    dup_prob, dup_jitter:
        Message duplication probability and the duplicate's extra delay.
    reorder_prob, reorder_jitter:
        Sub-bound reordering jitter.
    schedule:
        Scripted windows (blackouts, forced bursts, forced spikes).
    """

    ge_p_good_bad: float = 0.0
    ge_p_bad_good: float = 0.25
    ge_loss_good: float = 0.0
    ge_loss_bad: float = 0.0
    spike_prob: float = 0.0
    spike_low: float = 0.0
    spike_high: float = 0.0
    dup_prob: float = 0.0
    dup_jitter: float = 0.005
    reorder_prob: float = 0.0
    reorder_jitter: float = 0.005
    schedule: FaultSchedule = field(default_factory=FaultSchedule)

    def is_null(self) -> bool:
        """True when this config can never alter a single message."""
        burst = self.ge_loss_good > 0 or (
            self.ge_loss_bad > 0 and self.ge_p_good_bad > 0
        )
        spikes = self.spike_prob > 0 and self.spike_high > 0
        dups = self.dup_prob > 0
        reorder = self.reorder_prob > 0 and self.reorder_jitter > 0
        return not (burst or spikes or dups or reorder or bool(self.schedule))

    # -- presets & spec parsing --------------------------------------------
    #: Named presets selectable from the CLI (and used by tests).
    PRESETS = {
        "burst": dict(ge_p_good_bad=0.02, ge_p_bad_good=0.25, ge_loss_bad=0.9),
        "spike": dict(spike_prob=0.05, spike_low=0.05, spike_high=0.30),
        "dup": dict(dup_prob=0.05),
        "reorder": dict(reorder_prob=0.05),
    }

    @classmethod
    def from_spec(cls, spec: str) -> "FaultConfig":
        """Parse a ``run --faults`` spec string.

        Grammar (comma-separated tokens)::

            burst[=p_gb[:p_bg[:loss_bad]]]
            spike[=prob[:low[:high]]]
            dup[=prob[:jitter]]
            reorder[=prob[:jitter]]
            blackout=start:end[:direction]     # direction: both|to_im|from_im
            chaos                               # burst + spike + dup + reorder

        Examples: ``"burst,spike"``, ``"burst=0.05"``,
        ``"spike=0.1:0.05:0.4,blackout=40:45"``, ``"chaos"``.
        """
        config = cls()
        windows = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, value = token.partition("=")
            name = name.strip().lower()
            parts = [p for p in value.split(":") if p != ""] if value else []
            if name == "chaos":
                for preset in ("burst", "spike", "dup", "reorder"):
                    config = replace(config, **cls.PRESETS[preset])
            elif name == "burst":
                kwargs = dict(cls.PRESETS["burst"])
                keys = ("ge_p_good_bad", "ge_p_bad_good", "ge_loss_bad")
                for key, part in zip(keys, parts):
                    kwargs[key] = float(part)
                config = replace(config, **kwargs)
            elif name == "spike":
                kwargs = dict(cls.PRESETS["spike"])
                keys = ("spike_prob", "spike_low", "spike_high")
                for key, part in zip(keys, parts):
                    kwargs[key] = float(part)
                config = replace(config, **kwargs)
            elif name == "dup":
                kwargs = dict(cls.PRESETS["dup"])
                keys = ("dup_prob", "dup_jitter")
                for key, part in zip(keys, parts):
                    kwargs[key] = float(part)
                config = replace(config, **kwargs)
            elif name == "reorder":
                kwargs = dict(cls.PRESETS["reorder"])
                keys = ("reorder_prob", "reorder_jitter")
                for key, part in zip(keys, parts):
                    kwargs[key] = float(part)
                config = replace(config, **kwargs)
            elif name in WINDOW_KINDS:
                if len(parts) < 2:
                    raise ValueError(
                        f"{name} window needs start:end (got {token!r})"
                    )
                direction = parts[2] if len(parts) > 2 else "both"
                windows.append(
                    FaultWindow(
                        start=float(parts[0]),
                        end=float(parts[1]),
                        kind=name,
                        direction=direction,
                    )
                )
            else:
                known = sorted(
                    set(cls.PRESETS) | set(WINDOW_KINDS) | {"chaos"}
                )
                raise ValueError(
                    f"unknown fault token {name!r}; known: {', '.join(known)}"
                )
        if windows:
            config = replace(
                config,
                schedule=FaultSchedule(
                    tuple(config.schedule.windows) + tuple(windows)
                ),
            )
        return config

    def describe(self) -> str:
        """Short human-readable summary of the active models."""
        if self.is_null():
            return "none"
        bits = []
        if self.ge_loss_good > 0 or (self.ge_loss_bad > 0 and self.ge_p_good_bad > 0):
            bits.append(
                f"burst(p_gb={self.ge_p_good_bad}, p_bg={self.ge_p_bad_good}, "
                f"loss_bad={self.ge_loss_bad})"
            )
        if self.spike_prob > 0 and self.spike_high > 0:
            bits.append(
                f"spike(p={self.spike_prob}, "
                f"[{self.spike_low}, {self.spike_high}]s)"
            )
        if self.dup_prob > 0:
            bits.append(f"dup(p={self.dup_prob})")
        if self.reorder_prob > 0 and self.reorder_jitter > 0:
            bits.append(f"reorder(p={self.reorder_prob})")
        for w in self.schedule.windows:
            bits.append(f"{w.kind}[{w.start}, {w.end})/{w.direction}")
        return ", ".join(bits)


def random_fault_config(
    rng: np.random.Generator,
    horizon: float = 30.0,
    allow_blackout: bool = True,
) -> FaultConfig:
    """Draw a moderate random fault configuration (for property tests).

    The draw always enables burst loss and out-of-bound delay spikes
    (the two regimes the safety argument must survive), usually adds
    duplication/reordering, and sometimes scripts a short blackout
    window inside ``[0, horizon]``.  Parameters are kept inside ranges
    where runs still terminate: loss and blackouts stall progress but
    the retransmit clause must eventually win.
    """
    windows = []
    if allow_blackout and rng.random() < 0.5:
        start = float(rng.uniform(0.0, horizon * 0.6))
        length = float(rng.uniform(0.5, 3.0))
        direction = ("both", "to_im", "from_im")[int(rng.integers(3))]
        windows.append(
            FaultWindow(start, start + length, "blackout", direction)
        )
    return FaultConfig(
        ge_p_good_bad=float(rng.uniform(0.005, 0.06)),
        ge_p_bad_good=float(rng.uniform(0.15, 0.5)),
        ge_loss_bad=float(rng.uniform(0.5, 1.0)),
        spike_prob=float(rng.uniform(0.01, 0.10)),
        spike_low=0.02,
        spike_high=float(rng.uniform(0.1, 0.5)),
        dup_prob=float(rng.uniform(0.0, 0.08)),
        reorder_prob=float(rng.uniform(0.0, 0.08)),
        schedule=FaultSchedule(tuple(windows)),
    )


# Defensive: keep the dataclass field list in sync with from_spec keys.
_FIELD_NAMES = {f.name for f in fields(FaultConfig)}
for _preset in FaultConfig.PRESETS.values():
    assert set(_preset) <= _FIELD_NAMES, "preset key drifted from FaultConfig"
