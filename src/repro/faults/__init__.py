"""Deterministic, seed-driven fault injection for the network stack.

The seed channel models exactly two imperfections: i.i.d. message loss
and a delay distribution *clipped at the protocol's assumed bound*.
Latency-robust AIM work (Liu et al. 2020) shows the dangerous regime is
everything outside that envelope — correlated loss bursts, delay spikes
past the worst-case bound, duplicated and reordered deliveries, and
whole radio-dark windows.  This package models those regimes:

* :mod:`repro.faults.models` — per-message fault processes
  (Gilbert–Elliott burst loss, unbounded delay spikes, duplication,
  reordering jitter);
* :mod:`repro.faults.schedule` — scripted fault windows ("IM radio
  dark from t=40 to t=45") composed into a :class:`FaultSchedule`;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` the
  channel consults per transmission, with its **own** RNG stream so a
  zeroed configuration consumes no channel randomness and stays
  bit-identical to the fault-free path (the differential regression
  test pins this).

Everything is driven by one :class:`FaultConfig`, which also parses the
CLI's ``run --faults`` spec strings (``"burst,spike,blackout=40:45"``).
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    DelaySpikes,
    Duplication,
    GilbertElliottLoss,
    ReorderJitter,
)
from repro.faults.schedule import (
    FaultConfig,
    FaultSchedule,
    FaultWindow,
    random_fault_config,
)

__all__ = [
    "DelaySpikes",
    "Duplication",
    "FaultConfig",
    "FaultInjector",
    "FaultSchedule",
    "FaultWindow",
    "GilbertElliottLoss",
    "ReorderJitter",
    "random_fault_config",
]
