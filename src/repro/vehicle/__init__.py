"""Vehicle layer: specs, the protocol state machine, motion control.

A vehicle in this system is (Ch 2):

* a :class:`VehicleSpec` — the static ``VehicleInfo`` packet contents
  (dimensions, acceleration limits, movement through the intersection);
* a noisy longitudinal plant (:mod:`repro.sensors.plant`) the agent
  steers by commanding velocities;
* a protocol state machine — *Arriving -> Sync -> Request -> Follow* —
  composed from the :mod:`repro.protocol` building blocks, with the
  retransmit and safe-stop clauses of Algorithms 2/4/6/8.

Three agent subclasses in :mod:`repro.vehicle.policies` implement the
vehicle side of the three IM protocols: :class:`VtimVehicle` (execute
velocity command on receipt), :class:`CrossroadsVehicle` (execute at
the commanded time ``TE``) and :class:`AimVehicle`
(propose/slow-down/retry).  They are resolved by policy name through
:mod:`repro.core.registry` via :func:`make_vehicle`.
"""

from repro.vehicle.agent import BaseVehicle, make_vehicle
from repro.vehicle.config import AgentConfig
from repro.vehicle.policies import AimVehicle, CrossroadsVehicle, VtimVehicle
from repro.vehicle.record import VehicleRecord, VehicleState
from repro.vehicle.spec import VehicleInfo, VehicleSpec

__all__ = [
    "AgentConfig",
    "AimVehicle",
    "BaseVehicle",
    "CrossroadsVehicle",
    "VehicleInfo",
    "VehicleRecord",
    "VehicleSpec",
    "VehicleState",
    "VtimVehicle",
    "make_vehicle",
]
