"""Vehicle agents: the Arriving/Sync/Request/Follow protocol machines.

Each agent couples three things on the DES:

* a **drive loop** stepping the noisy longitudinal plant every control
  period — tracking the committed plan if one exists, otherwise holding
  the approach speed, always subject to the *safe-stop clause* (brake
  when the stop line is closer than the braking distance and no plan
  has been received) and a *car-following clamp* against the vehicle
  ahead in the lane;
* a **protocol loop** implementing the vehicle side of Algorithms
  2 / 6 / 8 — NTP sync on crossing the transmission line, then the
  policy-specific request/response exchange with retransmission;
* **bookkeeping** — enter/exit times, measured RTDs, request counts —
  collected into a :class:`VehicleRecord` the metrics layer reads.

The route coordinate ``s`` is 1-D: the *front bumper* starts at 0 on
the transmission line; the stop line is at ``approach_length``; the box
exit is ``approach_length + path.length``; the vehicle despawns a short
outrun later.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.des import AnyOf, Environment
from repro.kinematics.arrival import plan_arrival
from repro.kinematics.profiles import MotionProfile, ProfileBuilder, brake_distance
from repro.network.channel import Radio
from repro.network.messages import (
    AimAccept,
    AimReject,
    AimRequest,
    CancelReservation,
    CrossingRequest,
    CrossroadsCommand,
    ExitNotification,
    SyncRequest,
    SyncResponse,
    VelocityCommand,
)
from repro.sensors.plant import LongitudinalPlant, PlantConfig
from repro.timesync.clock import Clock
from repro.timesync.ntp import NtpClient, NtpSample
from repro.vehicle.spec import VehicleInfo

__all__ = [
    "AgentConfig",
    "AimVehicle",
    "BaseVehicle",
    "CrossroadsVehicle",
    "VehicleRecord",
    "VehicleState",
    "VtimVehicle",
    "make_vehicle",
]


class VehicleState(enum.Enum):
    """Protocol states of Ch 2."""

    ARRIVING = "arriving"
    SYNC = "sync"
    REQUEST = "request"
    FOLLOW = "follow"
    DONE = "done"


@dataclass
class AgentConfig:
    """Vehicle-side tunables."""

    #: Control period, seconds (testbed Arduinos ran ~50 Hz).
    dt: float = 0.02
    #: Response timeout before retransmitting, seconds (> WC-RTD).
    retry_timeout: float = 0.25
    #: AIM: pause between a reject and the next request, seconds.
    aim_retry_interval: float = 0.15
    #: AIM: speed reduction applied after each reject, m/s.
    aim_speed_step: float = 0.5
    #: AIM: slowest speed worth proposing a constant-speed crossing at;
    #: below this the vehicle stops at the line and proposes a launch.
    aim_propose_min_speed: float = 0.5
    #: Crawl-speed floor, m/s.
    v_crawl: float = 0.10
    #: Minimum bumper-to-bumper gap kept by the follower clamp, metres.
    gap_min: float = 0.30
    #: Extra margin added to the safe-stop distance, metres.
    stop_margin: float = 0.05
    #: Distance driven past the box before despawning, metres.
    outrun: float = 1.0
    #: Proportional gain of the plan-position tracking loop, 1/s.
    position_gain: float = 3.0
    #: Feedforward lead, seconds: command the plan velocity this far
    #: ahead to cancel the plant's first-order response lag.
    velocity_lead: float = 0.025
    #: Crossroads: cruise floor below which a launch is planned; must
    #: match the IM's ``IMConfig.v_arrive_floor``.
    arrive_floor: float = 1.2
    #: Slowest plannable cruise speed; must match ``IMConfig.v_min`` so
    #: the vehicle reconstructs exactly the trajectory the IM booked.
    plan_v_min: float = 0.25
    #: Drop the plan and re-request when lagging it by more than this
    #: (a blocked vehicle cannot honour its slot; renegotiate).
    replan_lag: float = 0.30
    #: Largest acceptable request->response round trip, seconds.  A
    #: command that took longer is based on state older than the WC-RTD
    #: bound assumes; VT-IM (whose safety argument *is* that bound)
    #: rejects it and re-requests.
    max_rtd: float = 0.150
    #: Multiplicative retransmit jitter: each retry waits
    #: ``timeout * (1 + U[0, backoff_jitter])`` so a fleet silenced by
    #: the same blackout does not re-request in lockstep.
    backoff_jitter: float = 0.1
    #: Consecutive unanswered requests before entering degraded mode
    #: (safe-stop hold until the IM is heard from again).
    silence_limit: int = 5
    #: Largest NTP round trip a sync sample may show before the vehicle
    #: distrusts it and re-exchanges: the offset-estimate error is
    #: bounded by *half the round trip*, so a delay-spiked sync exchange
    #: silently skews the local clock by tens of ms — more than the
    #: paper's whole Ch 3.2 sync buffer.  Default is 2x the testbed
    #: delay model's one-way worst case (2 * 7.5 ms), which fault-free
    #: samples never exceed.
    sync_rtt_limit: float = 0.015
    #: Sync-exchange budget: after this many samples the best
    #: (minimum-delay) one is used regardless — safe degradation inside
    #: a forced delay-spike window, not an infinite loop.
    sync_attempts: int = 4

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if self.v_crawl <= 0:
            raise ValueError("v_crawl must be positive")
        if self.max_rtd <= 0:
            raise ValueError("max_rtd must be positive")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.silence_limit < 1:
            raise ValueError("silence_limit must be >= 1")
        if self.sync_rtt_limit <= 0:
            raise ValueError("sync_rtt_limit must be positive")
        if self.sync_attempts < 1:
            raise ValueError("sync_attempts must be >= 1")


@dataclass
class VehicleRecord:
    """Per-vehicle outcome, filled in as the run progresses."""

    vehicle_id: int
    movement_key: str
    spawn_time: float
    spawn_speed: float
    enter_time: Optional[float] = None
    exit_time: Optional[float] = None
    despawn_time: Optional[float] = None
    #: Free-flow transit time from spawn to box exit (delay baseline).
    ideal_transit: float = 0.0
    requests_sent: int = 0
    rejects_received: int = 0
    replans: int = 0
    #: Worst |planned - actual| position while following a plan, metres
    #: (should stay within the claimed safety buffer).
    max_tracking_error: float = 0.0
    #: Measured request->response round trips, seconds.
    rtds: List[float] = field(default_factory=list)
    came_to_stop: bool = False
    #: Commands refused because their execution deadline (TE / ToA)
    #: had already passed on the local clock when they arrived.
    stale_rejected: int = 0
    #: Responses whose measured round trip exceeded ``max_rtd``.
    deadline_misses: int = 0
    #: Timeout-triggered retransmissions (not reject renegotiations).
    retries: int = 0
    #: Simulated seconds spent in degraded (safe-stop hold) mode.
    degraded_time: float = 0.0
    #: Times the vehicle entered degraded mode.
    degraded_entries: int = 0
    #: Smallest deadline margin (seconds) of any *executed* command:
    #: ``TE - now`` / ``ToA - now`` at arrival, or ``max_rtd - rtd``
    #: for VT-IM.  The stale-rejection clauses guarantee this never
    #: goes negative; the property suite asserts it.
    min_command_margin: float = float("inf")

    @property
    def finished(self) -> bool:
        """True once the vehicle cleared the box."""
        return self.exit_time is not None

    @property
    def delay(self) -> Optional[float]:
        """Wait time: actual transit minus free-flow transit (Ch 7)."""
        if self.exit_time is None:
            return None
        return max((self.exit_time - self.spawn_time) - self.ideal_transit, 0.0)

    @property
    def worst_rtd(self) -> float:
        return max(self.rtds) if self.rtds else 0.0


class BaseVehicle:
    """Common agent machinery; subclasses add the request protocol.

    Parameters
    ----------
    env:
        DES environment.
    info:
        The vehicle's :class:`~repro.vehicle.spec.VehicleInfo`.
    radio:
        Attached radio (address ``V<id>``).
    clock:
        Local clock (offset/drift set by the spawner; NTP fixes it).
    path_length:
        Arc length of the movement's path through the box.
    approach_length:
        Transmission line to stop line distance.
    spawn_speed:
        Speed when crossing the transmission line.
    plant_config:
        Noise/limits of the longitudinal plant.
    im_address:
        Where to send protocol messages.
    predecessor:
        Callable returning the vehicle ahead in the lane (or None);
        supplied by the world for the car-following clamp.
    config:
        Agent tunables.
    rng:
        Randomness for the plant.
    """

    def __init__(
        self,
        env: Environment,
        info: VehicleInfo,
        radio: Radio,
        clock: Clock,
        path_length: float,
        approach_length: float = 3.0,
        spawn_speed: float = 3.0,
        plant_config: Optional[PlantConfig] = None,
        im_address: str = "IM",
        predecessor: Optional[Callable[[], Optional["BaseVehicle"]]] = None,
        config: Optional[AgentConfig] = None,
        rng: Optional[np.random.Generator] = None,
        plant_headroom: float = 1.0,
    ):
        if spawn_speed < 0 or spawn_speed > info.spec.v_max + 1e-9:
            raise ValueError("spawn_speed must be in [0, v_max]")
        self.env = env
        self.info = info
        self.radio = radio
        self.clock = clock
        self.ntp = NtpClient(clock)
        self.config = config if config is not None else AgentConfig()
        self.im_address = im_address
        self.predecessor = predecessor if predecessor is not None else (lambda: None)
        self.approach_length = approach_length
        self.path_length = path_length
        self.route_length = approach_length + path_length + self.config.outrun
        spec = info.spec
        if plant_headroom < 1.0:
            raise ValueError("plant_headroom must be >= 1.0")
        base_plant = plant_config if plant_config is not None else PlantConfig()
        # The physical car keeps a little authority above the limits it
        # *advertises* in VehicleInfo, so the tracking loop can recover
        # lag even when the plan uses the advertised maxima throughout.
        self.plant = LongitudinalPlant(
            PlantConfig(
                a_max=spec.a_max * plant_headroom,
                d_max=spec.d_max * plant_headroom,
                v_max=spec.v_max * min(plant_headroom, 1.03),
                tau=base_plant.tau,
                accel_noise_std=base_plant.accel_noise_std,
                encoder=base_plant.encoder,
            ),
            position=0.0,
            velocity=spawn_speed,
            rng=rng,
        )
        self.state = VehicleState.SYNC
        self.approach_speed = spawn_speed
        self.plan: Optional[MotionProfile] = None
        self._retry_timeout = self.config.retry_timeout
        #: Safe-stop latch: once the stop clause fires, stay stopped
        #: until a plan is committed (prevents creeping over the line).
        self._hold = False
        #: Consecutive unanswered requests (reset on any response).
        self._timeouts_in_a_row = 0
        #: Degraded mode: prolonged IM silence -> safe-stop hold until
        #: the IM is heard from again.
        self._degraded = False
        #: Protocol-side randomness (retransmit jitter).  Seeded from
        #: the vehicle rng so runs stay reproducible, but kept separate
        #: so protocol draws never perturb the plant's noise stream
        #: mid-run.
        self._proto_rng = np.random.default_rng(
            rng.integers(2**63) if rng is not None else None
        )
        self.record = VehicleRecord(
            vehicle_id=info.vehicle_id,
            movement_key=info.movement.key,
            spawn_time=env.now,
            spawn_speed=spawn_speed,
            ideal_transit=self._free_flow_transit(spawn_speed),
        )
        self._drive_proc = env.process(self._drive_loop())
        self._protocol_proc = env.process(self._protocol_loop())

    # -- geometry helpers -----------------------------------------------------
    @property
    def front(self) -> float:
        """True front-bumper route coordinate."""
        return self.plant.position

    @property
    def rear(self) -> float:
        """True rear-bumper route coordinate."""
        return self.plant.position - self.info.spec.length

    @property
    def speed(self) -> float:
        """True speed."""
        return self.plant.velocity

    @property
    def done(self) -> bool:
        return self.state is VehicleState.DONE

    def measured_distance_to_line(self) -> float:
        """Odometry estimate of the distance to the stop line."""
        return max(self.approach_length - self.plant.measured_position(), 0.0)

    def local_time(self) -> float:
        """Current local clock reading."""
        return self.clock.read(self.env.now)

    def _free_flow_transit(self, v0: float) -> float:
        """Unimpeded spawn-to-box-exit time at full throttle."""
        from repro.kinematics.arrival import earliest_arrival_time

        spec = self.info.spec
        total = self.approach_length + self.path_length + spec.length
        return earliest_arrival_time(total, v0, spec.v_max, spec.a_max)

    # -- drive loop ---------------------------------------------------------
    def _commanded_velocity(self) -> float:
        """Velocity command for this control period."""
        cfg = self.config
        spec = self.info.spec
        now = self.env.now
        if self.plan is not None and now >= self.plan.start_time:
            # Track the plan in the *odometry* frame — the plan was
            # anchored on measured state and the real car has no access
            # to ground truth.  Feedforward leads the plant's response
            # lag; the P-term absorbs start-of-plan and actuation error.
            v_ff = self.plan.velocity_at(now + cfg.velocity_lead)
            err = self.plan.position_at(now) - self.plant.measured_position()
            v_cmd = v_ff + cfg.position_gain * err
            self.record.max_tracking_error = max(
                self.record.max_tracking_error, abs(err)
            )
        elif self._hold or self._degraded:
            # Safe-stop hold: either the stop clause latched at the
            # line, or prolonged IM silence put the agent in degraded
            # mode — in both cases the only safe command is zero.
            v_cmd = 0.0
        else:
            v_cmd = self.approach_speed
            # Safe-stop clause: no committed plan and the line is near.
            dist = self.measured_distance_to_line()
            stop_dist = brake_distance(self.speed, spec.d_max) + cfg.stop_margin
            if dist <= stop_dist:
                self._hold = True
                v_cmd = 0.0
        # Clip at the *plant's* limit (advertised v_max plus headroom),
        # so the tracking loop may briefly exceed the plan speed to
        # recover lag.
        return float(np.clip(v_cmd, 0.0, self.plant.config.v_max))

    def _follow_clamp(self, v_cmd: float) -> float:
        """Never command a speed the leader's position cannot absorb."""
        leader = self.predecessor()
        if leader is None or leader.done:
            return v_cmd
        gap = leader.rear - self.front - self.config.gap_min
        if gap <= 0:
            return 0.0
        spec = self.info.spec
        # Gipps-style bound: we can always stop behind the leader even
        # if it brakes as hard as we can, given its current speed.
        v_safe = float(np.sqrt(leader.speed ** 2 + 2.0 * spec.d_max * gap))
        return min(v_cmd, v_safe)

    def _drive_loop(self):
        cfg = self.config
        while not self.done:
            v_cmd = self._follow_clamp(self._commanded_velocity())
            was_moving = self.speed > 0.02
            self.plant.step(v_cmd, cfg.dt)
            if was_moving and self.speed <= 0.02:
                self.record.came_to_stop = True
            if self._degraded:
                self.record.degraded_time += cfg.dt
            self._maybe_replan()
            self._check_milestones()
            yield self.env.timeout(cfg.dt)

    def _maybe_replan(self) -> None:
        """Abandon a plan the vehicle can no longer honour.

        A vehicle blocked by its leader falls behind its committed
        trajectory; entering the box late would consume another
        vehicle's slot, so while still on the approach it drops the
        plan and renegotiates from its actual state.
        """
        if self.plan is None or self.env.now < self.plan.start_time:
            return
        if self.front >= self.approach_length:
            return  # physically inside the box: committed
        dist = self.approach_length - self.front
        # Only abandon the plan if the vehicle can still stop before
        # the line — dropping it any later would send an unscheduled
        # vehicle into the box.
        can_stop = (
            brake_distance(self.speed, self.info.spec.d_max)
            + self.config.stop_margin
            <= dist
        )
        if not can_stop:
            return
        lag = self.plan.position_at(self.env.now) - self.plant.measured_position()
        # Far from the line a moderate lag is recoverable; close to it
        # the tolerance is the safety buffer itself — entering the box
        # further off-plan than the buffer would consume another
        # vehicle's slot.
        threshold = self.info.buffer if dist < 0.6 else self.config.replan_lag
        if lag > threshold:
            self.plan = None
            self._hold = False
            self.state = VehicleState.REQUEST
            self.record.replans += 1
            # Free the now-unusable slot right away: a ghost reservation
            # would block cross traffic until it times out.
            self.radio.send(
                CancelReservation(sender=self.radio.address, receiver=self.im_address)
            )

    def _check_milestones(self) -> None:
        now = self.env.now
        if self.record.enter_time is None and self.front >= self.approach_length:
            self.record.enter_time = now
        box_end = self.approach_length + self.path_length
        if self.record.exit_time is None and self.rear >= box_end:
            self.record.exit_time = now
            self.radio.send(
                ExitNotification(
                    sender=self.radio.address,
                    receiver=self.im_address,
                    exit_time=self.local_time(),
                )
            )
        if self.front >= self.route_length:
            self.record.despawn_time = now
            self.state = VehicleState.DONE

    # -- protocol loop ----------------------------------------------------------
    def _protocol_loop(self):
        yield from self._sync_phase()
        while not self.done:
            if self.plan is None:
                self.state = VehicleState.REQUEST
                yield from self._request_phase()
            else:
                # Following a plan; poll for a replan-triggered drop.
                yield self.env.timeout(5 * self.config.dt)

    def _sync_phase(self):
        """NTP sync: retransmitted until answered, re-sampled if spiked.

        Uses the same backoff/degradation machinery as the request
        phases: a vehicle spawning into a blackout window must not
        hammer the channel, and prolonged silence still ends in a
        safe-stop hold.

        A sample whose measured round trip exceeds
        ``config.sync_rtt_limit`` is kept (the client's minimum-delay
        filter may still fall back on it) but not *trusted* on its own:
        the NTP offset error is bounded by half the round-trip delay,
        so accepting one delay-spiked exchange would skew the local
        clock past the entire Ch 3.2 sync buffer and let a Crossroads
        vehicle execute its ``TE`` inside cross traffic's window.  The
        vehicle re-exchanges, up to ``config.sync_attempts`` samples,
        then synchronises off the best (minimum-delay) sample it got.
        """
        attempts = 0
        while not self.done:
            t0 = self.local_time()
            self.radio.send(
                SyncRequest(sender=self.radio.address, receiver=self.im_address, t0=t0)
            )
            response = yield from self._await_response(
                self._next_retry_timeout(), SyncResponse
            )
            if response is None:
                self._backoff()
                continue
            t3 = self.local_time()
            sample = NtpSample(
                t0=response.t0, t1=response.t1, t2=response.t2, t3=t3
            )
            self.ntp.add_sample(sample)
            self._note_contact()
            attempts += 1
            if (
                sample.delay <= self.config.sync_rtt_limit
                or attempts >= self.config.sync_attempts
            ):
                self.ntp.synchronize()
                return
            # Spiked sample: count the re-exchange and try again.
            self.record.retries += 1

    def _blocked_by_leader(self) -> bool:
        """True while stuck in a queue behind a stopped leader.

        Requesting a slot the vehicle physically cannot use only stuffs
        the IM's book with ghost reservations (and its queue with
        work), so the protocol loops defer until the leader moves or
        commits into the box.
        """
        leader = self.predecessor()
        if leader is None or leader.done:
            return False
        if leader.front >= self.approach_length:
            return False  # leader is entering/inside the box
        gap = leader.rear - self.front
        return gap < 1.2 and leader.speed < 0.15

    def _next_retry_timeout(self) -> float:
        """Current retransmit timeout; backs off while unanswered.

        A multiplicative jitter of up to ``backoff_jitter`` is applied
        at *call* time (never stored), so a fleet of vehicles silenced
        by the same blackout window does not retransmit in lockstep
        when the radio comes back — the classic re-request storm.
        """
        jitter = self.config.backoff_jitter
        if jitter <= 0:
            return self._retry_timeout
        return self._retry_timeout * (1.0 + jitter * float(self._proto_rng.random()))

    def _backoff(self) -> None:
        """Grow the retransmit timeout (capped) after a timeout.

        The IM keeps only the newest request per sender, so polling is
        cheap; the cap mainly bounds how long a parked vehicle can miss
        a free window.  After ``silence_limit`` consecutive unanswered
        requests with no committed plan, the agent enters degraded
        mode: a safe-stop hold anywhere on the approach until the IM is
        heard from again (:meth:`_note_contact`).
        """
        self._retry_timeout = min(self._retry_timeout * 1.5, 0.8)
        self.record.retries += 1
        self._timeouts_in_a_row += 1
        if (
            self._timeouts_in_a_row >= self.config.silence_limit
            and self.plan is None
            and not self._degraded
        ):
            self._degraded = True
            self.record.degraded_entries += 1

    def _reset_backoff(self) -> None:
        self._retry_timeout = self.config.retry_timeout

    def _note_contact(self) -> None:
        """The IM answered: reset backoff and leave degraded mode."""
        self._reset_backoff()
        self._timeouts_in_a_row = 0
        if self._degraded:
            self._degraded = False

    def _note_executed(self, margin: float) -> None:
        """Record the deadline margin of a command about to execute."""
        self.record.min_command_margin = min(
            self.record.min_command_margin, float(margin)
        )

    def _await_response(self, timeout: float, *types, reply_to=None):
        """Wait up to ``timeout`` for a message of one of ``types``.

        Non-matching messages are discarded, as are replies correlated
        to a *superseded* request (``in_reply_to`` mismatch) — acting on
        a stale grant would commit the vehicle to a reservation window
        that has already drifted away.  Returns the message or ``None``
        on timeout.
        """
        deadline = self.env.now + timeout
        while True:
            remaining = deadline - self.env.now
            if remaining <= 0:
                return None
            get = self.radio.receive()
            expiry = self.env.timeout(remaining)
            result = yield AnyOf(self.env, [get, expiry])
            if get in result:
                message = result[get]
                if isinstance(message, types):
                    tag = getattr(message, "in_reply_to", 0)
                    if reply_to is None or tag in (0, reply_to):
                        return message
                continue  # stale or foreign message; keep waiting
            # Timed out: withdraw the pending get so it cannot swallow
            # a later delivery meant for the next exchange.
            self.radio.inbox.cancel_get(get)
            return None

    def _request_phase(self):
        """Policy-specific request/response exchange (subclass hook)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator

    # -- plan helpers ----------------------------------------------------------
    def _extend_through_box(self, builder: ProfileBuilder, v_cross: float) -> MotionProfile:
        """Continue a stop-line plan through the box and outrun."""
        if v_cross <= 0:
            v_cross = self.config.v_crawl
        builder.accelerate_to(v_cross, self.info.spec.a_max)
        remaining = self.route_length + self.info.spec.length - builder.build().end_position
        if remaining > 0:
            builder.hold_for(remaining / v_cross)
        return builder.build()

    def _set_plan(self, plan: MotionProfile) -> None:
        """Commit a plan and release the safe-stop latch."""
        self.plan = plan
        self._hold = False
        self.state = VehicleState.FOLLOW

    def _commit_cruise_plan(self, v_target: float) -> None:
        """VT-IM style: accelerate to ``v_target`` now and maintain."""
        spec = self.info.spec
        v_now = max(self.speed, 0.0)
        rate = spec.a_max if v_target >= v_now else spec.d_max
        builder = ProfileBuilder(self.env.now, self.plant.position, v_now)
        builder.accelerate_to(v_target, rate)
        self._set_plan(self._extend_through_box(builder, v_target))


class VtimVehicle(BaseVehicle):
    """Vehicle side of the plain VT-IM (Algorithm 2).

    Executes the commanded velocity *the instant it is received* — the
    behaviour whose position nondeterminism forces the RTD buffer.
    """

    def _request_phase(self):
        cfg = self.config
        while not self.done and self.plan is None:
            if self._blocked_by_leader():
                yield self.env.timeout(cfg.retry_timeout)
                continue
            sent_at = self.env.now
            self.record.requests_sent += 1
            request = CrossingRequest(
                sender=self.radio.address,
                receiver=self.im_address,
                tt=self.local_time(),
                dt=self.measured_distance_to_line(),
                vc=self.plant.measured_velocity(),
                vehicle_info=self.info,
            )
            self.radio.send(request)
            response = yield from self._await_response(
                self._next_retry_timeout(), VelocityCommand, reply_to=request.seq
            )
            if response is None:
                self._backoff()
                continue  # retransmit clause
            self._note_contact()
            rtd = self.env.now - sent_at
            self.record.rtds.append(rtd)
            # VT-IM's whole safety argument is the WC-RTD bound: a
            # command that took longer than ``max_rtd`` to arrive is
            # anchored on state older than the IM's buffer covers.
            # Executing it would reintroduce exactly the position
            # nondeterminism the buffer was sized against — reject and
            # re-request from fresh state.
            if rtd > cfg.max_rtd:
                self.record.deadline_misses += 1
                self.record.stale_rejected += 1
                continue
            self._note_executed(cfg.max_rtd - rtd)
            self._commit_cruise_plan(min(response.vt, self.info.spec.v_max))


class CrossroadsVehicle(BaseVehicle):
    """Vehicle side of Crossroads (Algorithm 8).

    Holds the reported velocity until the commanded execution time
    ``TE`` (on the *synchronised local clock*), then runs the planned
    trajectory to arrive at ``ToA`` with velocity ``VT``.
    """

    def _request_phase(self):
        cfg = self.config
        spec = self.info.spec
        while not self.done and self.plan is None:
            if self._blocked_by_leader():
                yield self.env.timeout(cfg.retry_timeout)
                continue
            sent_at = self.env.now
            tt = self.local_time()
            dt_measured = self.measured_distance_to_line()
            vc = min(self.plant.measured_velocity(), spec.v_max)
            self.record.requests_sent += 1
            request = CrossingRequest(
                sender=self.radio.address,
                receiver=self.im_address,
                tt=tt,
                dt=dt_measured,
                vc=vc,
                vehicle_info=self.info,
            )
            self.radio.send(request)
            response = yield from self._await_response(
                self._next_retry_timeout(), CrossroadsCommand, reply_to=request.seq
            )
            if response is None:
                self._backoff()
                continue
            self._note_contact()
            rtd = self.env.now - sent_at
            self.record.rtds.append(rtd)
            if rtd > cfg.max_rtd:
                self.record.deadline_misses += 1
            # Stale-command rejection: a command whose execution time
            # has already passed on the synchronised clock (delay spike
            # past the bound, or an injected duplicate of an old grant)
            # cannot start the planned trajectory from the state the IM
            # assumed.  Refuse it and fall back to the committed
            # approach profile; the loop re-requests from fresh state.
            margin = response.te - self.local_time()
            if margin < -1e-9:
                self.record.stale_rejected += 1
                continue
            self._note_executed(margin)
            # Wait until the local clock reads TE; the vehicle keeps
            # holding its approach speed meanwhile (the drive loop's
            # default behaviour).
            wait = margin
            if wait > 0:
                yield self.env.timeout(wait)
            # Deterministic state at TE, as the IM computed it.
            de = max(dt_measured - vc * (response.te - tt), 0.01)
            start_pos = self.approach_length - de
            plan = plan_arrival(
                distance=de,
                v_init=vc,
                start_time=self.env.now,
                toa=self.env.now + max(response.toa - response.te, 0.0),
                a_max=spec.a_max,
                d_max=spec.d_max,
                v_max=spec.v_max,
                v_min=cfg.plan_v_min,
                start_position=start_pos,
                launch_below=cfg.arrive_floor,
            )
            if plan is None:
                continue  # unreachable command; re-request
            builder = ProfileBuilder(
                plan.profile.end_time, plan.profile.end_position, plan.arrival_velocity
            )
            box_plan = self._extend_through_box(builder, max(response.vt, cfg.v_crawl))
            self._set_plan(plan.profile.concat(box_plan))


class AimVehicle(BaseVehicle):
    """Vehicle side of the query-based AIM protocol (Algorithm 6).

    Proposes arrival at its current speed; on rejection slows one step
    and retries; when forced to a stop at the line, proposes a
    launch-from-stop reservation.
    """

    #: Initial launch-proposal lead over the local clock, seconds.
    LAUNCH_LEAD = 0.20
    #: Ceiling of the adaptive launch lead (see ``_request_phase``).
    LAUNCH_LEAD_MAX = 2.0

    def _request_phase(self):
        cfg = self.config
        spec = self.info.spec
        launch_lead = self.LAUNCH_LEAD
        while not self.done and self.plan is None:
            if self._blocked_by_leader():
                yield self.env.timeout(cfg.retry_timeout)
                continue
            vc = min(max(self.plant.measured_velocity(), 0.0), spec.v_max)
            dist = self.measured_distance_to_line()
            # Launch proposals are made once the safe-stop latch has
            # parked the vehicle near the line; the measured standoff is
            # sent so the IM simulates from the true stop position.
            stopped = vc < 0.05 and self._hold and dist < 0.5
            if stopped:
                # Propose the earliest launch the round trip allows (the
                # IM rejects anything inside WC-RTD); a larger margin
                # would be pure dead time at the line.  The lead is
                # *adaptive*: a delay spike during the NTP exchange can
                # skew this clock by tens of milliseconds, making every
                # fixed-lead proposal land inside the IM's WC-RTD window
                # and be rejected forever — so while launch proposals
                # keep bouncing, the lead grows (reset on acceptance).
                toa_local = self.local_time() + launch_lead
                request = AimRequest(
                    sender=self.radio.address,
                    receiver=self.im_address,
                    toa=toa_local,
                    vc=0.0,
                    vehicle_info=self.info,
                    accelerate=True,
                    standoff=float(min(max(dist, 0.0), 0.5)),
                )
            elif vc < cfg.aim_propose_min_speed:
                # Too slow for a constant-speed crossing to be worth
                # reserving; let the safe-stop clause bring the vehicle
                # to rest at the line, then propose a launch.
                yield self.env.timeout(cfg.aim_retry_interval)
                continue
            else:
                toa_local = self.local_time() + dist / vc
                request = AimRequest(
                    sender=self.radio.address,
                    receiver=self.im_address,
                    toa=toa_local,
                    vc=vc,
                    vehicle_info=self.info,
                    accelerate=False,
                )
            sent_at = self.env.now
            self.record.requests_sent += 1
            self.radio.send(request)
            response = yield from self._await_response(
                self._next_retry_timeout(), AimAccept, AimReject,
                reply_to=request.seq,
            )
            if response is None:
                self._backoff()
                continue  # lost message; retransmit
            self._note_contact()
            rtd = self.env.now - sent_at
            self.record.rtds.append(rtd)
            if rtd > cfg.max_rtd:
                self.record.deadline_misses += 1
            if isinstance(response, AimReject):
                self.record.rejects_received += 1
                if stopped:
                    # Widen the launch lead: the rejection may be a
                    # conflict (waiting works) or a clock-skew-induced
                    # too-soon proposal (only a larger lead works).
                    launch_lead = min(launch_lead * 1.5, self.LAUNCH_LEAD_MAX)
                else:
                    # Slow down one step and re-request (Ch 5.2).
                    self.approach_speed = max(
                        self.approach_speed - cfg.aim_speed_step, cfg.v_crawl
                    )
                yield self.env.timeout(cfg.aim_retry_interval)
                continue
            # Accepted: follow through at the reserved speed/time.
            delay_to_toa = response.toa - self.local_time()
            # Stale-accept rejection: a grant arriving after its own
            # ToA (delay spike past the bound, duplicated old accept)
            # reserves tiles the vehicle can no longer occupy on time.
            # Give the slot back and renegotiate from current state.
            if delay_to_toa < -1e-9:
                self.record.stale_rejected += 1
                self.radio.send(
                    CancelReservation(
                        sender=self.radio.address, receiver=self.im_address
                    )
                )
                yield self.env.timeout(cfg.aim_retry_interval)
                continue
            self._note_executed(delay_to_toa)
            if request.accelerate:
                # ``toa`` is the launch time: wait it out, then floor it.
                if delay_to_toa > 0:
                    yield self.env.timeout(delay_to_toa)
                builder = ProfileBuilder(self.env.now, self.plant.position, self.speed)
                self._set_plan(self._extend_through_box(builder, spec.v_max))
            else:
                # Keep cruising at the accepted speed; the reservation
                # was made for exactly this profile.
                self._commit_cruise_plan(min(response.vc, spec.v_max))


def make_vehicle(policy: str, *args, **kwargs) -> BaseVehicle:
    """Instantiate the agent class matching an IM policy name."""
    from repro.core.policy import normalize_policy

    classes = {
        "vt-im": VtimVehicle,
        "crossroads": CrossroadsVehicle,
        "batch-crossroads": CrossroadsVehicle,  # same vehicle protocol
        "aim": AimVehicle,
    }
    return classes[normalize_policy(policy)](*args, **kwargs)
