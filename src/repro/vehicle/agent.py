"""The base vehicle agent: drive loop + protocol-machine composition.

Each agent couples three things on the DES:

* a **drive loop** stepping the noisy longitudinal plant every control
  period — tracking the committed plan if one exists, otherwise holding
  the approach speed, always subject to the *safe-stop clause* (brake
  when the stop line is closer than the braking distance and no plan
  has been received) and a *car-following clamp* against the vehicle
  ahead in the lane;
* a **protocol loop** — the composition of the :mod:`repro.protocol`
  state machines: a :class:`~repro.protocol.sync.TimeSyncSession` on
  crossing the transmission line, then the policy-specific
  request/response phase (see :mod:`repro.vehicle.policies`) built on
  the shared :class:`~repro.protocol.loop.RequestLoop`,
  :class:`~repro.protocol.validate.CommandValidator` and
  :class:`~repro.protocol.degrade.DegradationMonitor`;
* **bookkeeping** — a :class:`~repro.vehicle.record.VehicleRecord` the
  metrics layer reads.

The route coordinate ``s`` is 1-D: the *front bumper* starts at 0 on
the transmission line; the stop line is at ``approach_length``; the box
exit is ``approach_length + path.length``; the vehicle despawns a short
outrun later.

:class:`BaseVehicle` holds no policy-specific protocol logic; the three
policy agents live in :mod:`repro.vehicle.policies` and are resolved by
name through :mod:`repro.core.registry` via :func:`make_vehicle`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.des import Environment
from repro.kinematics.profiles import MotionProfile, ProfileBuilder, brake_distance
from repro.network.channel import Radio
from repro.network.messages import CancelReservation, ExitNotification, Message
from repro.obs.events import NULL_LOG
from repro.protocol import (
    CommandValidator,
    DegradationMonitor,
    RequestLoop,
    TimeSyncSession,
)
from repro.sensors.plant import LongitudinalPlant, PlantConfig
from repro.timesync.clock import Clock
from repro.timesync.ntp import NtpClient
from repro.vehicle.config import AgentConfig
from repro.vehicle.record import VehicleRecord, VehicleState
from repro.vehicle.spec import VehicleInfo

__all__ = ["AgentConfig", "BaseVehicle", "VehicleRecord", "VehicleState",
           "make_vehicle"]


class BaseVehicle:
    """Common agent machinery; subclasses add the request protocol.

    Takes the DES ``env``, the vehicle's ``info``
    (:class:`~repro.vehicle.spec.VehicleInfo`), an attached ``radio``
    (address ``V<id>``), the drifting local ``clock`` (NTP fixes it),
    the movement's ``path_length`` through the box, the
    transmission-line-to-stop-line ``approach_length``, the
    ``spawn_speed``, the plant's ``plant_config``, the ``im_address``,
    a ``predecessor`` callable (vehicle ahead in lane, for the
    car-following clamp), the :class:`AgentConfig` tunables and the
    plant ``rng``.
    """

    def __init__(
        self,
        env: Environment,
        info: VehicleInfo,
        radio: Radio,
        clock: Clock,
        path_length: float,
        approach_length: float = 3.0,
        spawn_speed: float = 3.0,
        plant_config: Optional[PlantConfig] = None,
        im_address: str = "IM",
        predecessor: Optional[Callable[[], Optional["BaseVehicle"]]] = None,
        config: Optional[AgentConfig] = None,
        rng: Optional[np.random.Generator] = None,
        plant_headroom: float = 1.0,
        obs=None,
    ):
        if spawn_speed < 0 or spawn_speed > info.spec.v_max + 1e-9:
            raise ValueError("spawn_speed must be in [0, v_max]")
        self.env = env
        self.info = info
        self.radio = radio
        #: Observability sink (zero-cost null log unless a traced
        #: :class:`~repro.sim.world.World` supplies its event bus).
        self.obs = obs if obs is not None else NULL_LOG
        #: Correlation id of the last successfully answered exchange —
        #: ties ``vehicle.execute`` back to the granting span.
        self._last_reply_corr = 0
        self.clock = clock
        self.ntp = NtpClient(clock)
        self.config = config if config is not None else AgentConfig()
        self.im_address = im_address
        self.predecessor = predecessor if predecessor is not None else (lambda: None)
        self.approach_length = approach_length
        self.path_length = path_length
        self.route_length = approach_length + path_length + self.config.outrun
        spec = info.spec
        if plant_headroom < 1.0:
            raise ValueError("plant_headroom must be >= 1.0")
        base_plant = plant_config if plant_config is not None else PlantConfig()
        # The physical car keeps a little authority above the limits it
        # *advertises* in VehicleInfo, so the tracking loop can recover
        # lag even when the plan uses the advertised maxima throughout.
        self.plant = LongitudinalPlant(
            PlantConfig(
                a_max=spec.a_max * plant_headroom,
                d_max=spec.d_max * plant_headroom,
                v_max=spec.v_max * min(plant_headroom, 1.03),
                tau=base_plant.tau,
                accel_noise_std=base_plant.accel_noise_std,
                encoder=base_plant.encoder,
            ),
            position=0.0,
            velocity=spawn_speed,
            rng=rng,
        )
        self.state = VehicleState.SYNC
        self.approach_speed = spawn_speed
        self.plan: Optional[MotionProfile] = None
        #: Safe-stop latch: once the stop clause fires, stay stopped
        #: until a plan is committed (prevents creeping over the line).
        self._hold = False
        #: Protocol-side randomness (retransmit jitter): seeded from the
        #: vehicle rng for reproducibility, but a separate stream so
        #: protocol draws never perturb the plant's noise mid-run.
        self._proto_rng = np.random.default_rng(
            rng.integers(2**63) if rng is not None else None
        )
        cfg = self.config
        #: Silence / backoff / degraded-mode state machine.
        self.monitor = DegradationMonitor(
            cfg.retry_timeout,
            backoff_jitter=cfg.backoff_jitter,
            silence_limit=cfg.silence_limit,
            rng=self._proto_rng,
        )
        #: Request/response matching + jittered retransmission.
        self.proto = RequestLoop(env, radio, self.monitor, obs=self.obs)
        self.record = VehicleRecord(
            vehicle_id=info.vehicle_id,
            movement_key=info.movement.key,
            spawn_time=env.now,
            spawn_speed=spawn_speed,
            ideal_transit=self._free_flow_transit(spawn_speed),
        )
        #: Staleness clauses + deadline-margin accounting.
        self.validator = CommandValidator(cfg.max_rtd, self.record)
        #: NTP exchange with trust bound and attempt budget.
        self.sync = TimeSyncSession(
            self.proto,
            self.ntp,
            server=im_address,
            local_time=self.local_time,
            rtt_limit=cfg.sync_rtt_limit,
            attempt_budget=cfg.sync_attempts,
        )
        if self.obs.enabled:
            self.obs.emit(
                "vehicle.spawn", env.now, radio.address,
                vehicle_id=info.vehicle_id, movement=info.movement.key,
            )
        self._drive_proc = env.process(self._drive_loop())
        self._protocol_proc = env.process(self._protocol_loop())

    # -- protocol-machine views ------------------------------------------------
    @property
    def _degraded(self) -> bool:
        """Degraded (safe-stop hold) mode, owned by the monitor."""
        return self.monitor.degraded

    @property
    def _retry_timeout(self) -> float:
        """Current (un-jittered) retransmit timeout, owned by the monitor."""
        return self.monitor.retry_timeout

    # -- geometry helpers -----------------------------------------------------
    @property
    def front(self) -> float:
        """True front-bumper route coordinate."""
        return self.plant.position

    @property
    def rear(self) -> float:
        """True rear-bumper route coordinate."""
        return self.plant.position - self.info.spec.length

    @property
    def speed(self) -> float:
        """True speed."""
        return self.plant.velocity

    @property
    def done(self) -> bool:
        return self.state is VehicleState.DONE

    def measured_distance_to_line(self) -> float:
        """Odometry estimate of the distance to the stop line."""
        return max(self.approach_length - self.plant.measured_position(), 0.0)

    def local_time(self) -> float:
        """Current local clock reading."""
        return self.clock.read(self.env.now)

    def _free_flow_transit(self, v0: float) -> float:
        """Unimpeded spawn-to-box-exit time at full throttle."""
        from repro.kinematics.arrival import earliest_arrival_time

        spec = self.info.spec
        total = self.approach_length + self.path_length + spec.length
        return earliest_arrival_time(total, v0, spec.v_max, spec.a_max)

    # -- drive loop ---------------------------------------------------------
    def _commanded_velocity(self) -> float:
        """Velocity command for this control period."""
        cfg = self.config
        spec = self.info.spec
        now = self.env.now
        if self.plan is not None and now >= self.plan.start_time:
            # Track the plan in the *odometry* frame — the plan was
            # anchored on measured state and the real car has no access
            # to ground truth.  Feedforward leads the plant's response
            # lag; the P-term absorbs start-of-plan and actuation error.
            v_ff = self.plan.velocity_at(now + cfg.velocity_lead)
            err = self.plan.position_at(now) - self.plant.measured_position()
            v_cmd = v_ff + cfg.position_gain * err
            self.record.max_tracking_error = max(
                self.record.max_tracking_error, abs(err)
            )
        elif self._hold or self._degraded:
            # Safe-stop hold: either the stop clause latched at the
            # line, or prolonged IM silence put the agent in degraded
            # mode — in both cases the only safe command is zero.
            v_cmd = 0.0
        else:
            v_cmd = self.approach_speed
            # Safe-stop clause: no committed plan and the line is near.
            # The comparison pits odometry against the true line, so the
            # latch fires early by the accrued worst-case odometry drift
            # — at crawl speeds the brake distance is millimetres and a
            # half-count encoder bias integrated over a long approach
            # otherwise walks the true bumper over the line while the
            # measured distance still reads positive.
            dist = self.measured_distance_to_line()
            stop_dist = (
                brake_distance(self.speed, spec.d_max)
                + cfg.stop_margin
                + min(self.plant.odometry_error_bound, cfg.odometry_margin_cap)
            )
            if dist <= stop_dist:
                self._hold = True
                v_cmd = 0.0
        # Clip at the *plant's* limit (advertised v_max plus headroom),
        # so the tracking loop may briefly exceed the plan speed to
        # recover lag.
        return float(np.clip(v_cmd, 0.0, self.plant.config.v_max))

    def _follow_clamp(self, v_cmd: float) -> float:
        """Never command a speed the leader's position cannot absorb."""
        leader = self.predecessor()
        if leader is None or leader.done:
            return v_cmd
        gap = leader.rear - self.front - self.config.gap_min
        if gap <= 0:
            return 0.0
        spec = self.info.spec
        # Gipps-style bound: we can always stop behind the leader even
        # if it brakes as hard as we can, given its current speed.
        v_safe = float(np.sqrt(leader.speed ** 2 + 2.0 * spec.d_max * gap))
        return min(v_cmd, v_safe)

    def _drive_loop(self):
        cfg = self.config
        while not self.done:
            v_cmd = self._follow_clamp(self._commanded_velocity())
            was_moving = self.speed > 0.02
            self.plant.step(v_cmd, cfg.dt)
            if was_moving and self.speed <= 0.02:
                self.record.came_to_stop = True
            if self._degraded:
                self.record.degraded_time += cfg.dt
            self._maybe_replan()
            self._check_milestones()
            yield self.env.timeout(cfg.dt)

    def _maybe_replan(self) -> None:
        """Abandon a plan the vehicle can no longer honour.

        A vehicle blocked by its leader falls behind its committed
        trajectory; entering the box late would consume another
        vehicle's slot, so while still on the approach it drops the
        plan and renegotiates from its actual state.
        """
        if self.plan is None or self.env.now < self.plan.start_time:
            return
        if self.front >= self.approach_length:
            return  # physically inside the box: committed
        dist = self.approach_length - self.front
        # Only abandon the plan if the vehicle can still stop before
        # the line — dropping it any later would send an unscheduled
        # vehicle into the box.
        can_stop = (
            brake_distance(self.speed, self.info.spec.d_max)
            + self.config.stop_margin
            <= dist
        )
        if not can_stop:
            return
        lag = self.plan.position_at(self.env.now) - self.plant.measured_position()
        # Far from the line a moderate lag is recoverable; close to it
        # the tolerance is the safety buffer itself — entering the box
        # further off-plan than the buffer would consume another
        # vehicle's slot.
        threshold = self.info.buffer if dist < 0.6 else self.config.replan_lag
        if lag > threshold:
            self.plan = None
            self._hold = False
            self.state = VehicleState.REQUEST
            self.record.replans += 1
            # Free the now-unusable slot right away: a ghost reservation
            # would block cross traffic until it times out.
            self.radio.send(
                CancelReservation(sender=self.radio.address, receiver=self.im_address)
            )

    def _check_milestones(self) -> None:
        now = self.env.now
        if self.record.enter_time is None and self.front >= self.approach_length:
            self.record.enter_time = now
            if self.obs.enabled:
                self.obs.emit("vehicle.enter", now, self.radio.address)
        box_end = self.approach_length + self.path_length
        if self.record.exit_time is None and self.rear >= box_end:
            self.record.exit_time = now
            if self.obs.enabled:
                self.obs.emit("vehicle.exit", now, self.radio.address)
            self.radio.send(
                ExitNotification(
                    sender=self.radio.address,
                    receiver=self.im_address,
                    exit_time=self.local_time(),
                )
            )
        if self.front >= self.route_length:
            self.record.despawn_time = now
            self.state = VehicleState.DONE
            if self.obs.enabled:
                self.obs.emit("vehicle.despawn", now, self.radio.address)

    # -- protocol loop ----------------------------------------------------------
    def _protocol_loop(self):
        yield from self._sync_phase()
        while not self.done:
            if self.plan is None:
                self.state = VehicleState.REQUEST
                yield from self._request_phase()
            else:
                # Following a plan; poll for a replan-triggered drop.
                yield self.env.timeout(5 * self.config.dt)

    def _sync_phase(self):
        """Run the :class:`TimeSyncSession` with this agent's hooks.

        Timeout and contact share the request phases' backoff and
        degradation machinery — a vehicle spawning into a blackout
        window must not hammer the channel, and prolonged silence still
        ends in a safe-stop hold; spiked-sample re-exchanges count as
        retries.
        """
        yield from self.sync.run(
            should_abort=lambda: self.done,
            on_timeout=self._backoff,
            on_contact=self._note_contact,
            on_resample=self._count_retry,
        )

    def _blocked_by_leader(self) -> bool:
        """True while stuck in a queue behind a stopped leader.

        Requesting a slot the vehicle physically cannot use only stuffs
        the IM's book with ghost reservations (and its queue with
        work), so the protocol loops defer until the leader moves or
        commits into the box.
        """
        leader = self.predecessor()
        if leader is None or leader.done:
            return False
        if leader.front >= self.approach_length:
            return False  # leader is entering/inside the box
        gap = leader.rear - self.front
        return gap < 1.2 and leader.speed < 0.15

    def _backoff(self) -> None:
        """One unanswered exchange: count it and grow the monitor."""
        self.record.retries += 1
        if self.monitor.on_timeout(committed=self.plan is not None, now=self.env.now):
            self.record.degraded_entries += 1
            if self.obs.enabled:
                self.obs.emit(
                    "vehicle.degraded", self.env.now, self.radio.address,
                    silence=self.monitor.timeouts_in_a_row,
                )

    def _note_contact(self) -> None:
        """The IM answered: reset backoff and leave degraded mode."""
        self.monitor.on_contact(now=self.env.now)

    def _count_retry(self) -> None:
        self.record.retries += 1

    def _exchange(self, request: Message, *types):
        """One counted, correlated request/response round.

        Sends ``request``, awaits a reply of one of ``types`` matching
        the request's seq, and runs the shared timeout/contact
        bookkeeping.  Returns ``(response, rtd)``; ``response`` is None
        after an unanswered (backed-off) exchange.
        """
        sent_at = self.env.now
        self.record.requests_sent += 1
        response = yield from self.proto.exchange(
            request, *types, reply_to=request.seq
        )
        if response is None:
            self._backoff()
            return None, 0.0
        self._note_contact()
        self._last_reply_corr = getattr(response, "corr", 0) or request.seq
        return response, self.env.now - sent_at

    def _request_phase(self):
        """Policy-specific request/response exchange (subclass hook)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator

    # -- plan helpers ----------------------------------------------------------
    def _extend_through_box(self, builder: ProfileBuilder, v_cross: float) -> MotionProfile:
        """Continue a stop-line plan through the box and outrun."""
        if v_cross <= 0:
            v_cross = self.config.v_crawl
        builder.accelerate_to(v_cross, self.info.spec.a_max)
        remaining = self.route_length + self.info.spec.length - builder.build().end_position
        if remaining > 0:
            builder.hold_for(remaining / v_cross)
        return builder.build()

    def _set_plan(self, plan: MotionProfile) -> None:
        """Commit a plan and release the safe-stop latch."""
        self.plan = plan
        self._hold = False
        self.state = VehicleState.FOLLOW
        if self.obs.enabled:
            self.obs.emit(
                "vehicle.execute", self.env.now, self.radio.address,
                corr=self._last_reply_corr, te=plan.start_time,
            )

    def _commit_cruise_plan(self, v_target: float) -> None:
        """VT-IM style: accelerate to ``v_target`` now and maintain."""
        spec = self.info.spec
        v_now = max(self.speed, 0.0)
        rate = spec.a_max if v_target >= v_now else spec.d_max
        builder = ProfileBuilder(self.env.now, self.plant.position, v_now)
        builder.accelerate_to(v_target, rate)
        self._set_plan(self._extend_through_box(builder, v_target))


def make_vehicle(policy, *args, **kwargs) -> BaseVehicle:
    """Instantiate the agent class matching an IM policy.

    ``policy`` may be a registered policy name/alias or a
    :class:`~repro.core.registry.PolicySpec`; resolution goes through
    :mod:`repro.core.registry`, so plugin policies work everywhere the
    built-ins do.  (Imported lazily: the registry references vehicle
    classes, so a module-level import here would be circular.)
    """
    from repro.core.registry import resolve_policy

    return resolve_policy(policy).vehicle_cls(*args, **kwargs)
