"""Vehicle-side tunables (testbed defaults)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AgentConfig"]


@dataclass
class AgentConfig:
    """Vehicle-side tunables."""

    #: Control period, seconds (testbed Arduinos ran ~50 Hz).
    dt: float = 0.02
    #: Response timeout before retransmitting, seconds (> WC-RTD).
    retry_timeout: float = 0.25
    #: AIM: pause between a reject and the next request, seconds.
    aim_retry_interval: float = 0.15
    #: AIM: speed reduction applied after each reject, m/s.
    aim_speed_step: float = 0.5
    #: AIM: slowest speed worth proposing a constant-speed crossing at;
    #: below this the vehicle stops at the line and proposes a launch.
    aim_propose_min_speed: float = 0.5
    #: Crawl-speed floor, m/s.
    v_crawl: float = 0.10
    #: Minimum bumper-to-bumper gap kept by the follower clamp, metres.
    gap_min: float = 0.30
    #: Extra margin added to the safe-stop distance, metres.
    stop_margin: float = 0.05
    #: Cap on the odometry-drift allowance folded into the safe-stop
    #: distance, metres.  The latch widens by the plant's accrued
    #: worst-case odometry error (so a slow, long approach cannot creep
    #: its true bumper over the line while the measured distance still
    #: reads positive), but is capped so a long-queued vehicle still
    #: parks inside the 0.5 m standoff the launch proposal needs.
    odometry_margin_cap: float = 0.25
    #: Distance driven past the box before despawning, metres.
    outrun: float = 1.0
    #: Proportional gain of the plan-position tracking loop, 1/s.
    position_gain: float = 3.0
    #: Feedforward lead, seconds: command the plan velocity this far
    #: ahead to cancel the plant's first-order response lag.
    velocity_lead: float = 0.025
    #: Crossroads: cruise floor below which a launch is planned; must
    #: match the IM's ``IMConfig.v_arrive_floor``.
    arrive_floor: float = 1.2
    #: Slowest plannable cruise speed; must match ``IMConfig.v_min`` so
    #: the vehicle reconstructs exactly the trajectory the IM booked.
    plan_v_min: float = 0.25
    #: Drop the plan and re-request when lagging it by more than this
    #: (a blocked vehicle cannot honour its slot; renegotiate).
    replan_lag: float = 0.30
    #: Largest acceptable request->response round trip, seconds.  A
    #: command that took longer is based on state older than the WC-RTD
    #: bound assumes; VT-IM (whose safety argument *is* that bound)
    #: rejects it and re-requests.
    max_rtd: float = 0.150
    #: Multiplicative retransmit jitter: each retry waits
    #: ``timeout * (1 + U[0, backoff_jitter])`` so a fleet silenced by
    #: the same blackout does not re-request in lockstep.
    backoff_jitter: float = 0.1
    #: Consecutive unanswered requests before entering degraded mode
    #: (safe-stop hold until the IM is heard from again).
    silence_limit: int = 5
    #: Largest NTP round trip a sync sample may show before the vehicle
    #: distrusts it and re-exchanges: the offset-estimate error is
    #: bounded by *half the round trip*, so a delay-spiked sync exchange
    #: silently skews the local clock by tens of ms — more than the
    #: paper's whole Ch 3.2 sync buffer.  Default is 2x the testbed
    #: delay model's one-way worst case (2 * 7.5 ms), which fault-free
    #: samples never exceed.
    sync_rtt_limit: float = 0.015
    #: Sync-exchange budget: after this many samples the best
    #: (minimum-delay) one is used regardless — safe degradation inside
    #: a forced delay-spike window, not an infinite loop.
    sync_attempts: int = 4

    def __post_init__(self):
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if self.v_crawl <= 0:
            raise ValueError("v_crawl must be positive")
        if self.max_rtd <= 0:
            raise ValueError("max_rtd must be positive")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.silence_limit < 1:
            raise ValueError("silence_limit must be >= 1")
        if self.sync_rtt_limit <= 0:
            raise ValueError("sync_rtt_limit must be positive")
        if self.sync_attempts < 1:
            raise ValueError("sync_attempts must be >= 1")
