"""Static vehicle data: the ``VehicleInfo`` packet of Ch 4.

The paper's request packet carries "maximum acceleration, maximum
deceleration, max speed, length, width, lane of entry, lane of exit,
direction of entry, direction of exit, and safety buffer size".  Here
that is a :class:`VehicleSpec` (physical constants) plus the
:class:`~repro.geometry.Movement` and the buffer, wrapped together as
:class:`VehicleInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geometry.layout import Movement

__all__ = ["VehicleInfo", "VehicleSpec"]


@dataclass(frozen=True)
class VehicleSpec:
    """Physical constants of one vehicle.

    Defaults are the testbed's 1/10-scale Traxxas Slash: 0.568 m long,
    0.296 m wide, limited to 3 m/s.
    """

    length: float = 0.568
    width: float = 0.296
    a_max: float = 3.0
    d_max: float = 4.0
    v_max: float = 3.0
    wheelbase: float = 0.335

    def __post_init__(self):
        if self.length <= 0 or self.width <= 0:
            raise ValueError("length and width must be positive")
        if self.a_max <= 0 or self.d_max <= 0 or self.v_max <= 0:
            raise ValueError("a_max, d_max and v_max must be positive")
        if not 0 < self.wheelbase <= self.length:
            raise ValueError("wheelbase must be in (0, length]")

    def with_limits(self, **kwargs) -> "VehicleSpec":
        """Copy with some fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class VehicleInfo:
    """The over-the-air ``VehicleInfo`` packet.

    Attributes
    ----------
    vehicle_id:
        Unique id assigned by the spawner.
    spec:
        Physical constants.
    movement:
        Entry approach and turn through the intersection.
    buffer:
        Safety-buffer size the *vehicle* claims (sensing + sync); the
        IM may add policy-specific terms (the VT-IM RTD buffer) on top.
    """

    vehicle_id: int
    spec: VehicleSpec
    movement: Movement
    buffer: float = 0.078

    def __post_init__(self):
        if self.vehicle_id < 0:
            raise ValueError("vehicle_id must be non-negative")
        if self.buffer < 0:
            raise ValueError("buffer must be non-negative")

    @property
    def effective_length(self) -> float:
        """Body length plus the buffer ring at both ends."""
        return self.spec.length + 2.0 * self.buffer

    def effective_length_with(self, extra_buffer: float) -> float:
        """Body length plus (buffer + extra) at both ends."""
        if extra_buffer < 0:
            raise ValueError("extra_buffer must be non-negative")
        return self.spec.length + 2.0 * (self.buffer + extra_buffer)
