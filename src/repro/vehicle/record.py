"""Per-vehicle protocol states and outcome bookkeeping.

:class:`VehicleState` names the Ch 2 protocol phases; a
:class:`VehicleRecord` is filled in as a run progresses and is what the
metrics layer reads — enter/exit times, measured RTDs, request counts,
and the robustness accounting (stale rejections, retries, degraded
time) the fault suite pins.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["VehicleRecord", "VehicleState"]


class VehicleState(enum.Enum):
    """Protocol states of Ch 2."""

    ARRIVING = "arriving"
    SYNC = "sync"
    REQUEST = "request"
    FOLLOW = "follow"
    DONE = "done"


@dataclass
class VehicleRecord:
    """Per-vehicle outcome, filled in as the run progresses."""

    vehicle_id: int
    movement_key: str
    spawn_time: float
    spawn_speed: float
    enter_time: Optional[float] = None
    exit_time: Optional[float] = None
    despawn_time: Optional[float] = None
    #: Free-flow transit time from spawn to box exit (delay baseline).
    ideal_transit: float = 0.0
    requests_sent: int = 0
    rejects_received: int = 0
    replans: int = 0
    #: Worst |planned - actual| position while following a plan, metres
    #: (should stay within the claimed safety buffer).
    max_tracking_error: float = 0.0
    #: Measured request->response round trips, seconds.
    rtds: List[float] = field(default_factory=list)
    came_to_stop: bool = False
    #: Commands refused because their execution deadline (TE / ToA)
    #: had already passed on the local clock when they arrived.
    stale_rejected: int = 0
    #: Responses whose measured round trip exceeded ``max_rtd``.
    deadline_misses: int = 0
    #: Timeout-triggered retransmissions (not reject renegotiations).
    retries: int = 0
    #: Simulated seconds spent in degraded (safe-stop hold) mode.
    degraded_time: float = 0.0
    #: Times the vehicle entered degraded mode.
    degraded_entries: int = 0
    #: Smallest deadline margin (seconds) of any *executed* command:
    #: ``TE - now`` / ``ToA - now`` at arrival, or ``max_rtd - rtd``
    #: for VT-IM.  The stale-rejection clauses guarantee this never
    #: goes negative; the property suite asserts it.
    min_command_margin: float = float("inf")

    @property
    def finished(self) -> bool:
        """True once the vehicle cleared the box."""
        return self.exit_time is not None

    @property
    def delay(self) -> Optional[float]:
        """Wait time: actual transit minus free-flow transit (Ch 7)."""
        if self.exit_time is None:
            return None
        return max((self.exit_time - self.spawn_time) - self.ideal_transit, 0.0)

    @property
    def worst_rtd(self) -> float:
        return max(self.rtds) if self.rtds else 0.0
