"""The three policy agents, as thin compositions over the protocol layer.

Each class supplies only its :meth:`~repro.vehicle.agent.BaseVehicle._request_phase`
— one request/response exchange per loop iteration via the shared
:meth:`~repro.vehicle.agent.BaseVehicle._exchange` helper, with the
freshness clauses delegated to the agent's
:class:`~repro.protocol.validate.CommandValidator`:

* :class:`VtimVehicle` — Algorithm 2.  Rejects any command whose
  measured round trip exceeded the WC-RTD bound (that bound *is* the
  policy's safety argument).
* :class:`CrossroadsVehicle` — Algorithm 8.  Holds speed until the
  commanded execution time ``TE`` on the synchronised clock, rejecting
  commands whose ``TE`` already passed.
* :class:`AimVehicle` — Algorithm 6 (query-based).  Proposes crossings,
  slows one step per rejection, launches from a stop at the line, and
  returns grants that arrived after their own ``ToA``.

These classes are not referenced by name anywhere in the runner stack:
:mod:`repro.core.policy` registers them with :mod:`repro.core.registry`
and everything downstream resolves policies through that.
"""

from __future__ import annotations

from repro.kinematics.arrival import plan_arrival
from repro.kinematics.profiles import ProfileBuilder
from repro.network.messages import (
    AimAccept,
    AimReject,
    AimRequest,
    CancelReservation,
    CrossingRequest,
    CrossroadsCommand,
    VelocityCommand,
)
from repro.vehicle.agent import BaseVehicle

__all__ = ["AimVehicle", "CrossroadsVehicle", "VtimVehicle"]


class VtimVehicle(BaseVehicle):
    """Vehicle side of the plain VT-IM (Algorithm 2).

    Executes the commanded velocity *the instant it is received* — the
    behaviour whose position nondeterminism forces the RTD buffer.
    """

    def _request_phase(self):
        cfg = self.config
        while not self.done and self.plan is None:
            if self._blocked_by_leader():
                yield self.env.timeout(cfg.retry_timeout)
                continue
            request = CrossingRequest(
                sender=self.radio.address,
                receiver=self.im_address,
                tt=self.local_time(),
                dt=self.measured_distance_to_line(),
                vc=self.plant.measured_velocity(),
                vehicle_info=self.info,
            )
            response, rtd = yield from self._exchange(request, VelocityCommand)
            if response is None:
                continue  # retransmit clause
            # VT-IM's whole safety argument is the WC-RTD bound: a
            # command that took longer than ``max_rtd`` to arrive is
            # anchored on state older than the IM's buffer covers.
            # Executing it would reintroduce exactly the position
            # nondeterminism the buffer was sized against — reject and
            # re-request from fresh state.
            if not self.validator.admit_rtd(rtd):
                self.record.stale_rejected += 1
                continue
            self.validator.note_executed(cfg.max_rtd - rtd)
            self._commit_cruise_plan(min(response.vt, self.info.spec.v_max))


class CrossroadsVehicle(BaseVehicle):
    """Vehicle side of Crossroads (Algorithm 8).

    Holds the reported velocity until the commanded execution time
    ``TE`` (on the *synchronised local clock*), then runs the planned
    trajectory to arrive at ``ToA`` with velocity ``VT``.
    """

    def _request_phase(self):
        cfg = self.config
        spec = self.info.spec
        while not self.done and self.plan is None:
            if self._blocked_by_leader():
                yield self.env.timeout(cfg.retry_timeout)
                continue
            tt = self.local_time()
            dt_measured = self.measured_distance_to_line()
            vc = min(self.plant.measured_velocity(), spec.v_max)
            request = CrossingRequest(
                sender=self.radio.address,
                receiver=self.im_address,
                tt=tt,
                dt=dt_measured,
                vc=vc,
                vehicle_info=self.info,
            )
            response, rtd = yield from self._exchange(request, CrossroadsCommand)
            if response is None:
                continue
            self.validator.admit_rtd(rtd)
            # Stale-command rejection: a command whose execution time
            # has already passed on the synchronised clock (delay spike
            # past the bound, or an injected duplicate of an old grant)
            # cannot start the planned trajectory from the state the IM
            # assumed.  Refuse it and fall back to the committed
            # approach profile; the loop re-requests from fresh state.
            margin = response.te - self.local_time()
            if not self.validator.admit_deadline(margin):
                continue
            # Wait until the local clock reads TE; the vehicle keeps
            # holding its approach speed meanwhile (the drive loop's
            # default behaviour).
            if margin > 0:
                yield self.env.timeout(margin)
            # Deterministic state at TE, as the IM computed it.
            de = max(dt_measured - vc * (response.te - tt), 0.01)
            start_pos = self.approach_length - de
            plan = plan_arrival(
                distance=de,
                v_init=vc,
                start_time=self.env.now,
                toa=self.env.now + max(response.toa - response.te, 0.0),
                a_max=spec.a_max,
                d_max=spec.d_max,
                v_max=spec.v_max,
                v_min=cfg.plan_v_min,
                start_position=start_pos,
                launch_below=cfg.arrive_floor,
            )
            if plan is None:
                continue  # unreachable command; re-request
            builder = ProfileBuilder(
                plan.profile.end_time, plan.profile.end_position, plan.arrival_velocity
            )
            box_plan = self._extend_through_box(builder, max(response.vt, cfg.v_crawl))
            self._set_plan(plan.profile.concat(box_plan))


class AimVehicle(BaseVehicle):
    """Vehicle side of the query-based AIM protocol (Algorithm 6).

    Proposes arrival at its current speed; on rejection slows one step
    and retries; when forced to a stop at the line, proposes a
    launch-from-stop reservation.
    """

    #: Initial launch-proposal lead over the local clock, seconds.
    LAUNCH_LEAD = 0.20
    #: Ceiling of the adaptive launch lead (see ``_request_phase``).
    LAUNCH_LEAD_MAX = 2.0

    def _request_phase(self):
        cfg = self.config
        spec = self.info.spec
        launch_lead = self.LAUNCH_LEAD
        while not self.done and self.plan is None:
            if self._blocked_by_leader():
                yield self.env.timeout(cfg.retry_timeout)
                continue
            vc = min(max(self.plant.measured_velocity(), 0.0), spec.v_max)
            dist = self.measured_distance_to_line()
            # Launch proposals are made once the safe-stop latch has
            # parked the vehicle near the line; the measured standoff is
            # sent so the IM simulates from the true stop position.
            stopped = vc < 0.05 and self._hold and dist < 0.5
            if stopped:
                # Propose the earliest launch the round trip allows (the
                # IM rejects anything inside WC-RTD); a larger margin
                # would be pure dead time at the line.  The lead is
                # *adaptive*: a delay spike during the NTP exchange can
                # skew this clock by tens of milliseconds, making every
                # fixed-lead proposal land inside the IM's WC-RTD window
                # and be rejected forever — so while launch proposals
                # keep bouncing, the lead grows (reset on acceptance).
                toa_local = self.local_time() + launch_lead
                request = AimRequest(
                    sender=self.radio.address,
                    receiver=self.im_address,
                    toa=toa_local,
                    vc=0.0,
                    vehicle_info=self.info,
                    accelerate=True,
                    standoff=float(min(max(dist, 0.0), 0.5)),
                )
            elif vc < cfg.aim_propose_min_speed:
                # Too slow for a constant-speed crossing to be worth
                # reserving; let the safe-stop clause bring the vehicle
                # to rest at the line, then propose a launch.
                yield self.env.timeout(cfg.aim_retry_interval)
                continue
            else:
                toa_local = self.local_time() + dist / vc
                request = AimRequest(
                    sender=self.radio.address,
                    receiver=self.im_address,
                    toa=toa_local,
                    vc=vc,
                    vehicle_info=self.info,
                    accelerate=False,
                )
            response, rtd = yield from self._exchange(request, AimAccept, AimReject)
            if response is None:
                continue  # lost message; retransmit
            self.validator.admit_rtd(rtd)
            if isinstance(response, AimReject):
                self.record.rejects_received += 1
                if stopped:
                    # Widen the launch lead: the rejection may be a
                    # conflict (waiting works) or a clock-skew-induced
                    # too-soon proposal (only a larger lead works).
                    launch_lead = min(launch_lead * 1.5, self.LAUNCH_LEAD_MAX)
                else:
                    # Slow down one step and re-request (Ch 5.2).
                    self.approach_speed = max(
                        self.approach_speed - cfg.aim_speed_step, cfg.v_crawl
                    )
                yield self.env.timeout(cfg.aim_retry_interval)
                continue
            # Accepted: follow through at the reserved speed/time.
            delay_to_toa = response.toa - self.local_time()
            # Stale-accept rejection: a grant arriving after its own
            # ToA (delay spike past the bound, duplicated old accept)
            # reserves tiles the vehicle can no longer occupy on time.
            # Give the slot back and renegotiate from current state.
            if not self.validator.admit_deadline(delay_to_toa):
                self.radio.send(
                    CancelReservation(
                        sender=self.radio.address, receiver=self.im_address
                    )
                )
                yield self.env.timeout(cfg.aim_retry_interval)
                continue
            if request.accelerate:
                # ``toa`` is the launch time: wait it out, then floor it.
                if delay_to_toa > 0:
                    yield self.env.timeout(delay_to_toa)
                # Execution-time revalidation: the wait ran on the
                # drifting local clock, so check the granted window is
                # still live at the moment the launch actually starts.
                # A wake-up more than one WC-RTD past ToA means the
                # window the IM simulated has lapsed — and its watchdog
                # may already have invalidated the reservation — so
                # entering the box on it would be an ungranted entry.
                # Give the slot back and renegotiate instead.
                if not self.validator.admit_deadline(
                    response.toa + cfg.max_rtd - self.local_time()
                ):
                    self.radio.send(
                        CancelReservation(
                            sender=self.radio.address, receiver=self.im_address
                        )
                    )
                    continue
                builder = ProfileBuilder(self.env.now, self.plant.position, self.speed)
                self._set_plan(self._extend_through_box(builder, spec.v_max))
            else:
                # Keep cruising at the accepted speed; the reservation
                # was made for exactly this profile.
                self._commit_cruise_plan(min(response.vc, spec.v_max))
