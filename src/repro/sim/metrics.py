"""Run-level metrics.

The paper's headline quantities:

* **average wait time** (Fig 7.1) — mean per-vehicle delay, where a
  vehicle's delay is its actual spawn-to-box-exit time minus its
  free-flow time;
* **throughput** (Fig 7.2) — "number of managed vehicles divided by
  total wait time";
* **computation overhead / network traffic** (Ch 7.2) — total IM
  compute seconds and total messages, where AIM's trial-and-error
  costs up to 16-20X Crossroads'.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.vehicle.record import VehicleRecord

__all__ = ["SimResult", "compare_policies"]


@dataclass
class SimResult:
    """Everything measured in one simulation run."""

    policy: str
    records: List[VehicleRecord]
    sim_duration: float
    compute_time: float = 0.0
    compute_requests: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    messages_by_type: Dict[str, int] = field(default_factory=dict)
    rejects: int = 0
    collisions: int = 0
    buffer_violations: int = 0
    min_separation: float = float("inf")
    worst_service_time: float = 0.0
    #: Receiver-side suppressed copies (fault-injected duplicates).
    duplicates_dropped: int = 0
    #: Channel loss/drop attribution (``NetworkStats.by_reason``).
    losses_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Injected-fault counters by kind (``FaultInjector.snapshot()``);
    #: empty for fault-free runs.
    fault_injections: Dict[str, int] = field(default_factory=dict)
    #: Reservations withdrawn by the IM's quiet-vehicle watchdog.
    reservation_invalidations: int = 0
    #: Reordered / long-delayed requests dropped by the IM's per-sender
    #: monotonic sequence guard (see ``IMStats.stale_requests_dropped``).
    stale_requests_dropped: int = 0
    #: Flat :meth:`repro.perf.PerfCounters.snapshot` of the run
    #: (wall-clock timers + hot-path counters).  Deliberately *not*
    #: part of :meth:`summary`: wall time varies run to run, while the
    #: summary must stay bit-identical between serial and parallel
    #: executions of the same seeds.
    perf: Dict[str, float] = field(default_factory=dict)
    #: Flat :func:`repro.obs.span_stats` histogram of the run's
    #: exchange spans (p50/p95/max RTD and IM compute delay) — empty
    #: unless the world ran with an event log attached.  Like ``perf``,
    #: deliberately *not* part of :meth:`summary`: attaching tracing
    #: must never change the scientific metrics.
    obs: Dict[str, float] = field(default_factory=dict)
    #: Streaming-metrics snapshot
    #: (:meth:`repro.obs.MetricsRegistry.snapshot`) — empty unless the
    #: world ran with a registry attached.  Picklable and mergeable
    #: across parallel workers via
    #: :func:`repro.obs.merge_metrics_snapshots`.  Like ``perf`` and
    #: ``obs``, deliberately *not* part of :meth:`summary`: attaching
    #: metrics must never change the scientific numbers (the metered ≡
    #: unmetered equivalence test pins this).
    metrics: Dict = field(default_factory=dict)

    # -- vehicle-level aggregates ------------------------------------------
    @property
    def finished(self) -> List[VehicleRecord]:
        """Vehicles that cleared the box."""
        return [r for r in self.records if r.finished]

    @property
    def n_finished(self) -> int:
        return len(self.finished)

    @property
    def delays(self) -> np.ndarray:
        """Per-finished-vehicle wait times."""
        return np.array([r.delay for r in self.finished], dtype=float)

    @property
    def total_delay(self) -> float:
        """Summed excess wait time, seconds."""
        return float(self.delays.sum()) if self.n_finished else 0.0

    @property
    def average_delay(self) -> float:
        """Mean excess wait time (the Fig 7.1 y-axis)."""
        return float(self.delays.mean()) if self.n_finished else 0.0

    @property
    def transit_times(self) -> np.ndarray:
        """Per-finished-vehicle time in the managed area (spawn->exit)."""
        return np.array(
            [r.exit_time - r.spawn_time for r in self.finished], dtype=float
        )

    @property
    def total_transit(self) -> float:
        """Summed time-in-system, seconds."""
        return float(self.transit_times.sum()) if self.n_finished else 0.0

    @property
    def throughput(self) -> float:
        """Vehicles per second of total wait (the Fig 7.2 y-axis).

        "Wait time" is each vehicle's total time in the managed area
        (transmission line to box exit): at low flow every policy sits
        at 1/free-flow-transit, and the curves diverge downward as
        congestion stretches transits — the Fig 7.2 shape.
        """
        if not self.n_finished or self.total_transit <= 0:
            return 0.0
        return self.n_finished / self.total_transit

    @property
    def worst_rtd(self) -> float:
        """Largest request->response round trip any vehicle saw."""
        rtds = [r.worst_rtd for r in self.records if r.rtds]
        return max(rtds) if rtds else 0.0

    @property
    def requests_total(self) -> int:
        return sum(r.requests_sent for r in self.records)

    @property
    def stops(self) -> int:
        """Vehicles that came to a complete stop."""
        return sum(1 for r in self.records if r.came_to_stop)

    @property
    def safe(self) -> bool:
        """True when no ground-truth body overlap ever occurred."""
        return self.collisions == 0

    # -- robustness aggregates ---------------------------------------------
    @property
    def stale_rejected(self) -> int:
        """Commands refused because their deadline had already passed."""
        return sum(r.stale_rejected for r in self.records)

    @property
    def deadline_misses(self) -> int:
        """Responses whose round trip exceeded the assumed WC-RTD."""
        return sum(r.deadline_misses for r in self.records)

    @property
    def retries(self) -> int:
        """Timeout-triggered retransmissions across all vehicles."""
        return sum(r.retries for r in self.records)

    @property
    def degraded_time(self) -> float:
        """Total simulated seconds vehicles spent in safe-stop hold."""
        return float(sum(r.degraded_time for r in self.records))

    @property
    def degraded_entries(self) -> int:
        """Times any vehicle entered degraded mode."""
        return sum(r.degraded_entries for r in self.records)

    @property
    def min_command_margin(self) -> float:
        """Smallest deadline margin of any executed command (inf when
        no command carried a deadline).  The stale-rejection clauses
        guarantee this is never negative — the property suite pins it."""
        margins = [r.min_command_margin for r in self.records]
        return min(margins) if margins else float("inf")

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers (for tables/benches)."""
        return {
            "policy_vehicles": float(self.n_finished),
            "avg_delay_s": self.average_delay,
            "total_delay_s": self.total_delay,
            "throughput": self.throughput,
            "compute_s": self.compute_time,
            "messages": float(self.messages_sent),
            "requests": float(self.requests_total),
            "rejects": float(self.rejects),
            "stops": float(self.stops),
            "collisions": float(self.collisions),
            "worst_rtd_s": self.worst_rtd,
            # Robustness accounting (all zero on a fault-free run, and
            # deterministic per seed, so parallel bit-identity holds).
            "stale_rejected": float(self.stale_rejected),
            "deadline_misses": float(self.deadline_misses),
            "retries": float(self.retries),
            "duplicates_dropped": float(self.duplicates_dropped),
            "degraded_s": self.degraded_time,
            "invalidations": float(self.reservation_invalidations),
            "stale_requests_dropped": float(self.stale_requests_dropped),
        }


def compare_policies(
    results: Sequence[SimResult], baseline: str, metric: str = "throughput"
) -> Dict[str, float]:
    """Ratio of each policy's metric to the baseline policy's.

    ``compare_policies(results, "vt-im")["crossroads"]`` is the
    paper's "Crossroads has 1.62X better throughput than VT-IM" style
    number.
    """
    by_policy: Dict[str, float] = {}
    for result in results:
        by_policy[result.policy] = float(getattr(result, metric))
    if baseline not in by_policy:
        raise ValueError(f"baseline {baseline!r} not among results")
    base = by_policy[baseline]
    if base == 0:
        raise ValueError("baseline metric is zero")
    return {policy: value / base for policy, value in by_policy.items()}
