"""Process-parallel experiment execution.

The evaluation grids (Fig 7.2's policy-by-flow sweep, multi-seed
replication) are embarrassingly parallel: every cell is an independent
simulation with an explicit seed and no shared mutable state.  This
module runs such grids across a process pool while keeping the results
**bit-identical** to serial execution:

* every :class:`RunTask` carries its own seed inside its arguments, so
  worker placement cannot change any RNG stream;
* results are gathered in submission order, never completion order;
* worker processes rebuild deterministic shared artefacts (geometry,
  conflict tables) from scratch — construction is pure, so rebuilt and
  shared instances produce the same trajectories;
* tasks reference policies by *name*, never by object: plain names for
  the built-ins, ``"module:name"`` qualified names for plugins (see
  :func:`repro.core.registry.portable_name`), which a worker resolves
  by importing the registering module.  This keeps every task picklable
  and makes custom policies runnable under any pool start method.

Degradation is graceful: ``jobs <= 1``, a single task, an unpicklable
task (e.g. a closure passed to :func:`repro.sim.replication.replicate`)
or a broken/forbidden process pool all fall back to a plain serial
loop, recording why in :attr:`ParallelRunner.fallback_reason`.

Worker count resolution (:func:`resolve_jobs`): an explicit integer
wins; ``None`` consults the ``REPRO_JOBS`` environment variable and
defaults to serial; ``0``, ``-1`` or ``"auto"`` mean "one worker per
CPU".
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["ParallelRunner", "RunTask", "resolve_jobs", "run_tasks"]

#: Environment variable consulted when ``jobs`` is None.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count (>= 1).

    ``None`` reads ``REPRO_JOBS`` (absent/invalid -> 1, i.e. serial);
    ``0``, ``-1`` and ``"auto"`` mean one worker per CPU; any other
    value is clamped to at least 1.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        jobs = raw
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(jobs)
        except ValueError:
            return 1
    if jobs in (0, -1):
        return os.cpu_count() or 1
    return max(int(jobs), 1)


@dataclass(frozen=True, eq=False)
class RunTask:
    """One picklable unit of work: ``fn(*args, **kwargs)``.

    ``fn`` must be an importable module-level callable for the task to
    cross a process boundary; anything else (lambdas, closures, bound
    methods of unpicklable objects) still *runs*, but forces the runner
    into its serial fallback.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Free-form label (used in error messages / bench artefacts).
    label: str = ""

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _execute_task(task: RunTask) -> Any:
    """Module-level trampoline (what actually crosses the pool)."""
    return task.run()


class ParallelRunner:
    """Ordered map of :class:`RunTask` s over a process pool.

    Parameters
    ----------
    jobs:
        Worker count request (see :func:`resolve_jobs`).

    Attributes
    ----------
    used_parallel:
        True when the last :meth:`map` actually ran on a pool.
    fallback_reason:
        Why the last :meth:`map` ran serially (``None`` when parallel).
    """

    def __init__(self, jobs: Union[int, str, None] = None):
        self.jobs = resolve_jobs(jobs)
        self.used_parallel = False
        self.fallback_reason: Optional[str] = None

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _first_unpicklable(tasks: Sequence[RunTask]) -> Optional[str]:
        """Label/repr of the first task that cannot cross a process."""
        for index, task in enumerate(tasks):
            try:
                pickle.dumps(task)
            except Exception:  # pickle raises a zoo of types
                return task.label or f"task #{index} ({task.fn!r})"
        return None

    @staticmethod
    def _run_serial(tasks: Sequence[RunTask]) -> List[Any]:
        return [task.run() for task in tasks]

    # -- public API --------------------------------------------------------
    def map(self, tasks: Sequence[RunTask]) -> List[Any]:
        """Run every task; results in task order.

        Exceptions raised by a task propagate to the caller (after the
        pool shuts down), exactly as they would serially.
        """
        tasks = list(tasks)
        self.used_parallel = False
        self.fallback_reason = None
        if not tasks:
            return []
        if self.jobs <= 1:
            self.fallback_reason = "jobs<=1"
            return self._run_serial(tasks)
        if len(tasks) == 1:
            self.fallback_reason = "single task"
            return self._run_serial(tasks)
        unpicklable = self._first_unpicklable(tasks)
        if unpicklable is not None:
            self.fallback_reason = f"unpicklable task: {unpicklable}"
            return self._run_serial(tasks)
        workers = min(self.jobs, len(tasks))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_execute_task, task) for task in tasks]
                results = [future.result() for future in futures]
        except (OSError, RuntimeError) as exc:
            # Pool could not start or died (sandboxed env, fork limits,
            # killed worker, ...): degrade to serial rather than fail.
            self.fallback_reason = f"pool failure: {type(exc).__name__}: {exc}"
            return self._run_serial(tasks)
        self.used_parallel = True
        return results


def run_tasks(
    tasks: Sequence[RunTask], jobs: Union[int, str, None] = None
) -> List[Any]:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(jobs).map(tasks)
