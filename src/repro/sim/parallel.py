"""Process-parallel experiment execution.

The evaluation grids (Fig 7.2's policy-by-flow sweep, multi-seed
replication) are embarrassingly parallel: every cell is an independent
simulation with an explicit seed and no shared mutable state.  This
module runs such grids across a process pool while keeping the results
**bit-identical** to serial execution:

* every :class:`RunTask` carries its own seed inside its arguments, so
  worker placement cannot change any RNG stream;
* results are gathered in submission order, never completion order;
* worker processes rebuild deterministic shared artefacts (geometry,
  conflict tables) from scratch — construction is pure, so rebuilt and
  shared instances produce the same trajectories;
* tasks reference policies by *name*, never by object: plain names for
  the built-ins, ``"module:name"`` qualified names for plugins (see
  :func:`repro.core.registry.portable_name`), which a worker resolves
  by importing the registering module.  This keeps every task picklable
  and makes custom policies runnable under any pool start method.

Degradation is graceful: ``jobs <= 1``, a single task, an unpicklable
task (e.g. a closure passed to :func:`repro.sim.replication.replicate`)
or a broken/forbidden process pool all fall back to a plain serial
loop, recording why in :attr:`ParallelRunner.fallback_reason`.

Where the speedup comes from
----------------------------
Two fixed costs used to eat the whole parallel win on small grids:

* **Pool spawn.**  A fresh ``ProcessPoolExecutor`` per ``map()`` pays
  interpreter start + module imports per worker, per call (hundreds of
  milliseconds — comparable to the grids themselves).  The pool is now
  **persistent**: created once per (worker count) and reused by every
  subsequent ``map()`` in the process, shut down at interpreter exit.
* **Per-task round-trips and double pickling.**  Tasks are submitted in
  **chunks** (several tasks per future), cutting executor round-trips,
  and the old ``_first_unpicklable`` pre-scan — which serialised every
  task once just to *predict* whether submission would — is gone:
  pickling errors now surface from the submission/gather path itself
  and trigger the same serial fallback without any pre-pass.

Worker count resolution (:func:`resolve_jobs`): an explicit integer
wins; ``None`` consults the ``REPRO_JOBS`` environment variable and
defaults to serial; ``0``, ``-1`` or ``"auto"`` mean "one worker per
CPU".
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.registry import registry_generation

__all__ = [
    "ParallelRunner",
    "RunTask",
    "resolve_jobs",
    "run_tasks",
    "shutdown_pool",
]

#: Environment variable consulted when ``jobs`` is None.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count (>= 1).

    ``None`` reads ``REPRO_JOBS`` (absent/invalid -> 1, i.e. serial);
    ``0``, ``-1`` and ``"auto"`` mean one worker per CPU; any other
    value is clamped to at least 1.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR, "").strip()
        if not raw:
            return 1
        jobs = raw
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(jobs)
        except ValueError:
            return 1
    if jobs in (0, -1):
        return os.cpu_count() or 1
    return max(int(jobs), 1)


@dataclass(frozen=True, eq=False)
class RunTask:
    """One picklable unit of work: ``fn(*args, **kwargs)``.

    ``fn`` must be an importable module-level callable for the task to
    cross a process boundary; anything else (lambdas, closures, bound
    methods of unpicklable objects) still *runs*, but forces the runner
    into its serial fallback.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Free-form label (used in error messages / bench artefacts).
    label: str = ""

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _execute_task(task: RunTask) -> Any:
    """Module-level trampoline (what actually crosses the pool)."""
    return task.run()


def _execute_chunk(tasks: Sequence[RunTask]) -> List[Any]:
    """Run a chunk of tasks in one worker round-trip, in order."""
    return [task.run() for task in tasks]


# -- persistent pool ---------------------------------------------------------
#: The process-wide executor, reused across ``map()`` calls.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
#: Policy-registry generation the pool's workers inherited.  Under the
#: default (fork) start method workers snapshot the registry at spawn;
#: a plugin registered afterwards would be invisible to them, so a
#: generation mismatch forces a fresh pool.
_POOL_REGISTRY_GEN = -1
#: Pools created over the process lifetime (bench/regression probe: a
#: well-behaved workload spawns exactly one).
POOL_SPAWNS = 0


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, (re)created on first use, a worker-count
    change, or a policy-registry mutation since the last spawn.  Worker
    processes are lazy: the executor object itself is cheap, processes
    spawn on first submit and then stay warm."""
    global _POOL, _POOL_WORKERS, _POOL_REGISTRY_GEN, POOL_SPAWNS
    generation = registry_generation()
    if (
        _POOL is None
        or _POOL_WORKERS != workers
        or _POOL_REGISTRY_GEN != generation
    ):
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
        _POOL_REGISTRY_GEN = generation
        POOL_SPAWNS += 1
    return _POOL


def _discard_pool() -> None:
    """Drop a broken pool so the next ``map()`` starts a fresh one."""
    global _POOL, _POOL_WORKERS, _POOL_REGISTRY_GEN
    if _POOL is not None:
        try:
            _POOL.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
    _POOL = None
    _POOL_WORKERS = 0
    _POOL_REGISTRY_GEN = -1


def shutdown_pool() -> None:
    """Shut the persistent pool down (tests / explicit cleanup)."""
    global _POOL, _POOL_WORKERS, _POOL_REGISTRY_GEN
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
    _POOL = None
    _POOL_WORKERS = 0
    _POOL_REGISTRY_GEN = -1


atexit.register(shutdown_pool)


def _is_pickling_error(exc: BaseException) -> bool:
    """Did submission die because a task cannot cross the process
    boundary?  ``pickle``/``copyreg`` raise PicklingError but also raw
    TypeError/AttributeError (e.g. locks, lambdas under some
    protocols), so match on the message for those."""
    if isinstance(exc, pickle.PicklingError):
        return True
    if isinstance(exc, (TypeError, AttributeError)):
        text = str(exc).lower()
        return "pickle" in text or "serialize" in text
    return False


class ParallelRunner:
    """Ordered map of :class:`RunTask` s over a persistent process pool.

    Parameters
    ----------
    jobs:
        Worker count request (see :func:`resolve_jobs`).
    chunk_size:
        Tasks per submitted future; ``None`` picks a size that gives
        each worker a few chunks (load balancing) without per-task
        round-trips.

    Attributes
    ----------
    used_parallel:
        True when the last :meth:`map` actually ran on a pool.
    fallback_reason:
        Why the last :meth:`map` ran serially (``None`` when parallel).
    """

    def __init__(
        self,
        jobs: Union[int, str, None] = None,
        chunk_size: Optional[int] = None,
    ):
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = chunk_size
        self.used_parallel = False
        self.fallback_reason: Optional[str] = None

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _run_serial(tasks: Sequence[RunTask]) -> List[Any]:
        return [task.run() for task in tasks]

    def _chunks(self, tasks: List[RunTask], workers: int) -> List[List[RunTask]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            # ~4 chunks per worker balances load against round-trips.
            size = max(1, len(tasks) // (workers * 4))
        return [tasks[i : i + size] for i in range(0, len(tasks), size)]

    # -- public API --------------------------------------------------------
    def map(self, tasks: Sequence[RunTask]) -> List[Any]:
        """Run every task; results in task order.

        Exceptions raised by a task propagate to the caller (with any
        still-pending chunks cancelled), exactly as they would
        serially.  Unpicklable tasks are detected when their chunk is
        submitted — no pre-scan serialises the batch twice — and
        demote the whole map to the serial fallback.
        """
        tasks = list(tasks)
        self.used_parallel = False
        self.fallback_reason = None
        if not tasks:
            return []
        if self.jobs <= 1:
            self.fallback_reason = "jobs<=1"
            return self._run_serial(tasks)
        if len(tasks) == 1:
            self.fallback_reason = "single task"
            return self._run_serial(tasks)
        workers = min(self.jobs, len(tasks))
        chunks = self._chunks(tasks, workers)
        try:
            pool = _get_pool(workers)
            futures = [pool.submit(_execute_chunk, chunk) for chunk in chunks]
            results: List[Any] = []
            failure: Optional[BaseException] = None
            for future in futures:
                if failure is not None:
                    future.cancel()
                    continue
                try:
                    results.extend(future.result())
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failure = exc
            if failure is not None:
                raise failure
        except Exception as exc:
            if _is_pickling_error(exc):
                # A task cannot cross the process boundary; the pool
                # itself is fine.
                self.fallback_reason = (
                    f"unpicklable task: {type(exc).__name__}: {exc}"
                )
                return self._run_serial(tasks)
            if isinstance(exc, (OSError, RuntimeError)):
                # Pool could not start or died (sandboxed env, fork
                # limits, killed worker, ...): degrade to serial rather
                # than fail, and drop the pool so the next map retries
                # from scratch.
                _discard_pool()
                self.fallback_reason = (
                    f"pool failure: {type(exc).__name__}: {exc}"
                )
                return self._run_serial(tasks)
            raise
        self.used_parallel = True
        return results


def run_tasks(
    tasks: Sequence[RunTask], jobs: Union[int, str, None] = None
) -> List[Any]:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(jobs).map(tasks)
