"""The shared node runtime: one intersection's complete machinery.

:class:`NodeRuntime` owns everything that happens *at* one
intersection — the IM (with its scheduler), the per-lane vehicle
queues and spawn wiring, the ground-truth safety monitor, the 1 Hz
reservation-invalidation watchdog, perf/machine-counter harvesting,
and the two scenario seams (``on_spawn`` hooks, ``safety_checks``
ticks).  :class:`~repro.sim.world.World` is a single-node
instantiation; :class:`~repro.grid.world.GridWorld` composes N of
them on one DES environment and one shared
:class:`~repro.network.transport.Transport` (the hand-off logic
between nodes stays in :mod:`repro.grid`).

What stays with the composer — and why
--------------------------------------
* **Master-RNG ownership.**  The composer draws the channel seed and
  passes its generator into :meth:`make_clock` / :meth:`add_vehicle`,
  which perform the per-spawn draws in the pinned order (clock offset,
  clock drift, clock RNG key, vehicle RNG key).  One stream across all
  nodes keeps a 1-node grid bit-identical to a plain world.
* **DES process creation.**  :meth:`safety_monitor` and
  :meth:`im_watchdog` are plain generators; the composer passes them
  to ``env.process`` in its documented order (the IM's own processes
  start inside ``make_im`` at runtime construction).
* **Transport scope.**  The runtime holds a reference for the IM but
  never attaches endpoints; radios are attached (and, across grid
  hand-offs, re-used) by the composer that owns the medium.

The golden engine-equivalence suite pins all of this: World,
GridWorld and the scenario library must replay bit-identically across
the extraction, serially and under a 2-worker pool.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import replace
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.policy import make_im
from repro.geometry.collision import OrientedRect, rects_overlap
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.network.transport import Transport
from repro.obs.events import EventLog
from repro.obs.metrics import RTD_BUCKETS
from repro.perf import PerfCounters
from repro.sensors.plant import PlantConfig
from repro.sim.metrics import SimResult
from repro.timesync.clock import Clock
from repro.vehicle.agent import BaseVehicle, make_vehicle
from repro.vehicle.spec import VehicleInfo

__all__ = ["NodeRuntime", "lane_predecessor"]


def lane_predecessor(lane: List[BaseVehicle], me_index: int) -> Optional[BaseVehicle]:
    """The nearest not-yet-despawned vehicle ahead in ``lane``.

    ``me_index`` is the caller's spawn position in the lane list; the
    scan walks backwards from there so the returned leader is the one
    whose rear bumper bounds the caller's car-following headway.  A
    returned ``None`` means the full approach is clear — every earlier
    spawn has already cleared its box and outrun.  Bound per-spawn via
    ``functools.partial`` with the lane list *object* (shared with
    later spawns) and the index *value* (frozen at spawn time).
    """
    for earlier in reversed(lane[:me_index]):
        if not earlier.done:
            return earlier
    return None


class NodeRuntime:
    """One intersection's runtime on a shared DES + transport.

    Parameters
    ----------
    env:
        The (shared) DES environment.
    policy_spec:
        A resolved policy (:func:`repro.core.registry.resolve_policy`
        output) — resolution stays with the composer, which may mix
        policies across nodes.
    transport:
        The shared medium; consumed strictly through the
        :class:`~repro.network.transport.Transport` surface.
    geometry / conflicts:
        Node-local intersection layout and (for VT-style policies) its
        conflict table, shared across nodes of one grid.
    config:
        The experiment's :class:`~repro.sim.world.WorldConfig`.
    im_address:
        This node's IM endpoint address (``config.im.address`` itself
        for a single-node world, ``"{base}.{node}"`` on grids).
    name:
        Label used as the actor of emitted safety events (``"world"``
        for the single-intersection world, the node name on grids).
    obs:
        Optional event log, threaded through IM and scheduler exactly
        as the pre-engine worlds did.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  The runtime
        samples its health gauges (per-approach queue depth, IM
        backlog, degraded population, reservation-book and tile-claim
        occupancy) from the safety-monitor tick and feeds the online
        round-trip-delay histogram — all labelled ``node=<name>`` so
        grids get per-node series.  Sampling only observes (no RNG,
        no DES events), so attaching a registry never changes a run's
        summary.
    """

    def __init__(
        self,
        env,
        policy_spec,
        transport: Transport,
        geometry: IntersectionGeometry,
        conflicts: Optional[ConflictTable],
        config,
        im_address: str,
        name: str = "world",
        obs: Optional[EventLog] = None,
        metrics=None,
    ):
        self.env = env
        self.spec = policy_spec
        self.policy = policy_spec.name
        self.transport = transport
        self.geometry = geometry
        self.conflicts = conflicts
        self.config = config
        self.im_address = im_address
        self.name = name
        self.obs = obs
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        #: Lazily built instrument cache (see :meth:`sample_metrics`).
        self._minstr: Optional[Dict[str, object]] = None
        #: Per-vehicle cursors into ``record.rtds`` so each completed
        #: round trip is folded into the online histogram exactly once.
        self._rtd_seen: List[int] = []
        im_cfg = (
            config.im
            if config.im.address == im_address
            else replace(config.im, address=im_address)
        )
        self.im = make_im(
            policy_spec,
            env,
            transport,
            geometry,
            conflicts=conflicts,
            config=im_cfg,
            aim_config=config.aim,
        )
        if obs is not None:
            # Injected post-construction to keep the policy-plugin IM
            # builder signature stable; safe because DES processes
            # scheduled in the constructor only execute under env.run().
            self.im.obs = obs
            scheduler = getattr(self.im, "scheduler", None)
            if scheduler is not None:
                scheduler.obs = obs
                scheduler.obs_now = lambda: self.env.now
        self.vehicles: List[BaseVehicle] = []
        self._lanes: Dict[str, List[BaseVehicle]] = {}
        self.collisions = 0
        self.buffer_violations = 0
        self.min_separation = math.inf
        #: Pairs currently in body overlap.  A pair that separates is
        #: cleared, so a later re-collision opens a *new* episode —
        #: ``collisions`` counts distinct contact events, not pairs.
        self._touching_pairs = set()
        #: ``(onset_time, (id_a, id_b))`` per collision episode; always
        #: satisfies ``len(collision_episodes) == collisions``.
        self.collision_episodes: List[Tuple[float, Tuple[int, int]]] = []
        #: Optional hook called with each vehicle right after it spawns
        #: (the scenario layer attaches behaviour processes here).  Must
        #: never draw from an RNG shared with the world: a ``None`` hook
        #: and a no-op hook are bit-identical.
        self.on_spawn: Optional[Callable[[BaseVehicle], None]] = None
        #: Extra per-tick safety checks, called as ``check(now)`` from
        #: the safety monitor after the pairwise sweep.  Checks only
        #: *observe* (no RNG, no DES events), so attaching one never
        #: changes a run's summary.
        self.safety_checks: List[Callable[[float], None]] = []
        #: Slot for an attached :class:`~repro.scenarios.SafetyOracle`
        #: (set by the scenario layer; read duck-typed by
        #: ``GridResult`` for per-node violation attribution).
        self.oracle = None

    # -- spawning -----------------------------------------------------------
    def vehicle_info(self, vehicle_id: int, spec, movement) -> VehicleInfo:
        """Per-hop vehicle identity with this world's planning buffer."""
        return VehicleInfo(
            vehicle_id=vehicle_id,
            spec=spec,
            movement=movement,
            buffer=self.config.im.base_buffer,
        )

    def make_clock(self, master_rng: np.random.Generator) -> Clock:
        """Draw a fresh drifting clock (three master-RNG draws, in the
        pinned order: offset, drift, child RNG key)."""
        cfg = self.config
        return Clock(
            offset=float(
                master_rng.uniform(-cfg.clock_offset_bound, cfg.clock_offset_bound)
            ),
            drift=float(
                master_rng.uniform(-cfg.clock_drift_bound, cfg.clock_drift_bound)
            ),
            epoch=self.env.now,
            rng=np.random.default_rng(master_rng.integers(2 ** 63)),
        )

    def plant_config(self) -> PlantConfig:
        cfg = self.config
        plant_config = cfg.plant
        if cfg.ideal_vehicles:
            plant_config = PlantConfig(
                a_max=plant_config.a_max,
                d_max=plant_config.d_max,
                v_max=plant_config.v_max,
                tau=1e-3,
                accel_noise_std=0.0,
                encoder=plant_config.encoder,
            )
        return plant_config

    def lane(self, entry_value: str) -> List[BaseVehicle]:
        """This node's (created-on-demand) queue for one entry arm."""
        return self._lanes.setdefault(entry_value, [])

    def add_vehicle(
        self,
        info: VehicleInfo,
        radio,
        clock: Clock,
        spawn_speed: float,
        master_rng: np.random.Generator,
    ) -> BaseVehicle:
        """Build one protocol-running agent at this node (one master-RNG
        draw: the vehicle's child RNG key), register it into its lane,
        and fire the ``on_spawn`` seam."""
        cfg = self.config
        lane = self.lane(info.movement.entry.value)
        vehicle = make_vehicle(
            self.spec,
            self.env,
            info,
            radio,
            clock,
            path_length=self.geometry.crossing_distance(info.movement),
            approach_length=self.geometry.approach_length,
            spawn_speed=min(spawn_speed, info.spec.v_max),
            plant_config=self.plant_config(),
            im_address=self.im_address,
            predecessor=partial(lane_predecessor, lane, len(lane)),
            config=cfg.agent,
            rng=np.random.default_rng(master_rng.integers(2 ** 63)),
            plant_headroom=1.0 if cfg.ideal_vehicles else cfg.plant_headroom,
            obs=self.obs,
        )
        if cfg.ideal_vehicles:
            vehicle.plant.ideal = True
        lane.append(vehicle)
        self.vehicles.append(vehicle)
        if self.on_spawn is not None:
            self.on_spawn(vehicle)
        return vehicle

    # -- ground-truth poses --------------------------------------------------
    def pose_of(self, vehicle: BaseVehicle) -> OrientedRect:
        """Node-frame footprint of a vehicle's *body* (no buffer)."""
        movement = vehicle.info.movement
        spec = vehicle.info.spec
        path = self.geometry.path(movement)
        approach = self.geometry.approach_length
        centre_s = vehicle.front - spec.length / 2.0
        if centre_s < approach:
            entry = self.geometry.entry_point(movement.entry)
            fwd = np.array(movement.entry.inbound_unit)
            point = entry - (approach - centre_s) * fwd
            heading = movement.entry.heading
        else:
            s = centre_s - approach
            if s <= path.length:
                point = path.point_at(s)
                heading = path.heading_at(s)
            else:
                end = path.point_at(path.length)
                heading = path.heading_at(path.length)
                point = end + (s - path.length) * np.array(
                    [math.cos(heading), math.sin(heading)]
                )
        return OrientedRect(
            cx=float(point[0]),
            cy=float(point[1]),
            heading=float(heading),
            length=spec.length,
            width=spec.width,
        )

    def in_box(self, vehicle: BaseVehicle) -> bool:
        approach = self.geometry.approach_length
        path_len = vehicle.path_length
        return (
            vehicle.front + vehicle.info.buffer >= approach
            and vehicle.rear - vehicle.info.buffer <= approach + path_len
        )

    # -- periodic processes (composer passes these to env.process) ----------
    def safety_monitor(self):
        """Ground-truth sweep of all in-box footprints at ``safety_dt``."""
        while True:
            active = [
                v for v in self.vehicles if not v.done and self.in_box(v)
            ]
            for a, b in itertools.combinations(active, 2):
                rect_a, rect_b = self.pose_of(a), self.pose_of(b)
                gap = math.hypot(rect_a.cx - rect_b.cx, rect_a.cy - rect_b.cy)
                self.min_separation = min(self.min_separation, gap)
                pair = (min(a.info.vehicle_id, b.info.vehicle_id),
                        max(a.info.vehicle_id, b.info.vehicle_id))
                if rects_overlap(rect_a, rect_b):
                    # Episode semantics: a sustained overlap counts
                    # once at onset; once the bodies separate the pair
                    # is cleared, so a distinct later contact counts
                    # as a new episode.
                    if pair not in self._touching_pairs:
                        self._touching_pairs.add(pair)
                        self.collisions += 1
                        self.collision_episodes.append((self.env.now, pair))
                        if self.obs is not None and self.obs.enabled:
                            self.obs.emit(
                                "safety.collision", self.env.now, self.name,
                                vehicle_a=pair[0], vehicle_b=pair[1],
                            )
                elif pair in self._touching_pairs:
                    self._touching_pairs.discard(pair)
                elif a.info.movement.entry != b.info.movement.entry and rects_overlap(
                    rect_a.inflated_longitudinal(a.info.buffer),
                    rect_b.inflated_longitudinal(b.info.buffer),
                ):
                    # Buffered-footprint contact between *cross-traffic*
                    # vehicles: the planned-safety margin was consumed.
                    # Same-lane pairs queueing at the line are expected
                    # to sit closer than two buffers and are excluded.
                    self.buffer_violations += 1
            for check in self.safety_checks:
                check(self.env.now)
            if self.metrics is not None:
                self.sample_metrics(self.env.now)
            yield self.env.timeout(self.config.safety_dt)

    def im_watchdog(self):
        """1 Hz sweep invalidating reservations of quiet vehicles.

        Lives outside the IM: an infinite periodic process in
        :class:`~repro.core.base.BaseIM` would keep the event queue
        non-empty and hang unit tests that ``env.run()`` with no
        ``until`` (the composer's :meth:`run` steps in bounded
        increments instead).
        """
        while True:
            yield self.env.timeout(1.0)
            self.im.invalidate_quiet(self.env.now)

    # -- streaming metrics ---------------------------------------------------
    def sample_metrics(self, now: float) -> None:
        """Record this node's health series into the metrics registry.

        Invoked from the safety-monitor tick (``config.safety_dt``) and
        once more at result time so the final protocol exchanges are
        counted.  Purely observational: reads existing state, draws
        from no RNG, schedules no DES event — the metrics-off
        bit-identity test pins that.
        """
        registry = self.metrics
        if registry is None:
            return
        cached = self._minstr
        if cached is None:
            labels = {"node": self.name}
            cached = self._minstr = {
                "active": registry.gauge("node.vehicles_active", labels=labels),
                "degraded": registry.gauge("vehicles.degraded", labels=labels),
                "backlog": registry.gauge("im.backlog", labels=labels),
                "pending": registry.gauge("im.pending", labels=labels),
                # Occupancy gauges only where the IM has the structure:
                # a reservation book (VT-style) or a tile grid (AIM).
                "book": (
                    registry.gauge("scheduler.reservations", labels=labels)
                    if getattr(self.im, "scheduler", None) is not None
                    else None
                ),
                "tiles": (
                    registry.gauge("tiles.claims", labels=labels)
                    if getattr(self.im, "reservations", None) is not None
                    else None
                ),
                "rtd": registry.histogram(
                    "vehicle.rtd_seconds", labels=labels, buckets=RTD_BUCKETS
                ),
                "queues": {},
            }
        active = 0
        degraded = 0
        for vehicle in self.vehicles:
            if not vehicle.done:
                active += 1
                if vehicle.monitor.degraded:
                    degraded += 1
        cached["active"].set(active, now)
        cached["degraded"].set(degraded, now)
        queues = cached["queues"]
        for entry, lane in self._lanes.items():
            gauge = queues.get(entry)
            if gauge is None:
                gauge = queues.setdefault(
                    entry,
                    registry.gauge(
                        "node.queue_depth",
                        labels={"node": self.name, "approach": entry},
                    ),
                )
            gauge.set(sum(1 for v in lane if not v.done), now)
        work_queue = getattr(self.im, "_work_queue", None)
        if work_queue is not None:
            cached["backlog"].set(len(work_queue), now)
        pending = getattr(self.im, "_pending", None)
        if pending is not None:
            cached["pending"].set(len(pending), now)
        if cached["book"] is not None:
            cached["book"].set(len(self.im.scheduler), now)
        if cached["tiles"] is not None:
            cached["tiles"].set(self.im.reservations.claim_count, now)
        # Online RTD distribution: fold in the round trips completed
        # since the previous sample (cursor per vehicle, so no sample
        # list is ever re-read and nothing is retained beyond the
        # histogram's fixed bucket counts).
        histogram = cached["rtd"]
        cursors = self._rtd_seen
        for index, vehicle in enumerate(self.vehicles):
            if index == len(cursors):
                cursors.append(0)
            rtds = vehicle.record.rtds
            seen = cursors[index]
            if len(rtds) > seen:
                for rtd in rtds[seen:]:
                    histogram.observe(rtd, now)
                cursors[index] = len(rtds)

    # -- metrics -------------------------------------------------------------
    def machine_counters(self, perf: PerfCounters) -> None:
        """Harvest the ROADMAP's per-machine protocol counters.

        All values derive from deterministic machine state (sim-time
        and message accounting, never wall clock), so jobs=1 and
        jobs=2 merges of the same seeds agree exactly.
        """
        loops = [v.proto for v in self.vehicles]
        perf.incr("machine.request_loop.exchanges",
                  sum(l.exchanges for l in loops))
        perf.incr("machine.request_loop.timeouts",
                  sum(l.timeouts for l in loops))
        perf.incr("machine.request_loop.discarded",
                  sum(l.discarded for l in loops))
        syncs = [v.sync for v in self.vehicles]
        perf.incr("machine.timesync.sessions", sum(s.sessions for s in syncs))
        perf.incr("machine.timesync.samples", sum(s.samples for s in syncs))
        perf.incr("machine.timesync.resamples", sum(s.resamples for s in syncs))
        monitors = [v.monitor for v in self.vehicles]
        perf.incr("machine.degradation.timeouts",
                  sum(m.timeouts_total for m in monitors))
        perf.incr("machine.degradation.contacts",
                  sum(m.contacts for m in monitors))
        perf.incr("machine.degradation.entries",
                  sum(m.degraded_entries for m in monitors))
        perf.incr("machine.degradation.degraded_s",
                  sum(m.degraded_time for m in monitors))
        guard = self.im.guard
        perf.incr("machine.sequence_guard.admitted", guard.admitted)
        perf.incr("machine.sequence_guard.drops", guard.drops)
        perf.incr("machine.sequence_guard.stale_cancels", guard.stale_cancels)
        perf.incr("machine.timesync_responder.responses",
                  self.im.sync_responder.responses)

    def perf_snapshot(
        self,
        base: Optional[PerfCounters] = None,
        des_events: Optional[int] = None,
    ) -> Dict[str, float]:
        """IM + machine + tile counters, merged onto ``base`` (the
        composer's wall-clock timers; kernel event count rides in via
        ``des_events`` so a per-node grid snapshot can omit it)."""
        perf = base if base is not None else PerfCounters()
        perf.merge(self.im.perf)
        if des_events is not None:
            perf.incr("des_events", des_events)
        self.machine_counters(perf)
        reservations = getattr(self.im, "reservations", None)
        if reservations is not None:  # AIM only
            grid = reservations.grid
            perf.incr("tile_cells_tested", grid.cells_tested)
            perf.incr("tile_cache_hits", grid.cache_hits)
            perf.incr("tile_cache_misses", grid.cache_misses)
            perf.incr("tile_cells_purged", reservations.purged_total)
            perf.incr("tile_cells_simulated", self.im.cells_simulated)
        snapshot = perf.snapshot()
        if reservations is not None:
            snapshot["tile_cache_hit_rate"] = perf.hit_rate(
                "tile_cache_hits", "tile_cache_misses"
            )
        return snapshot

    def result(
        self,
        stats,
        per_endpoint: bool,
        fault_injections: Dict,
        perf: Dict[str, float],
        obs_stats: Optional[Dict[str, float]] = None,
        metrics_snapshot: Optional[Dict] = None,
    ) -> SimResult:
        """This node's single-intersection result view.

        ``stats`` is the transport's counter object; ``per_endpoint``
        selects this IM's ``by_endpoint`` share of a shared medium
        (grids) versus the global totals (a single-node world, where
        the two coincide by the ``by_endpoint[im] == sent`` identity).
        """
        if per_endpoint:
            addr = self.im_address
            messages_sent = int(stats.by_endpoint[addr])
            bytes_sent = int(stats.bytes_by_endpoint[addr])
            duplicates_dropped = int(stats.dupes_by_endpoint[addr])
        else:
            messages_sent = stats.sent
            bytes_sent = stats.bytes_sent
            duplicates_dropped = stats.duplicates_dropped
        return SimResult(
            policy=self.policy,
            records=[v.record for v in self.vehicles],
            sim_duration=self.env.now,
            compute_time=self.im.compute.total_time,
            compute_requests=self.im.compute.requests,
            messages_sent=messages_sent,
            bytes_sent=bytes_sent,
            messages_by_type=dict(stats.by_type),
            rejects=self.im.stats.rejects,
            collisions=self.collisions,
            buffer_violations=self.buffer_violations,
            min_separation=self.min_separation,
            worst_service_time=self.im.stats.worst_service_time,
            duplicates_dropped=duplicates_dropped,
            losses_by_reason={k: int(v) for k, v in sorted(stats.by_reason.items())},
            fault_injections=fault_injections,
            reservation_invalidations=self.im.stats.invalidations,
            stale_requests_dropped=self.im.stats.stale_requests_dropped,
            perf=perf,
            obs=obs_stats if obs_stats is not None else {},
            metrics=metrics_snapshot if metrics_snapshot is not None else {},
        )
