"""Analytic (ideal-vehicle) fast engine.

The paper's own scalability study ran in Matlab with idealised vehicle
models — no actuation noise, no car-following, exact plan execution.
This module is that simulator: it replays an arrival list through the
*real* schedulers and compute-delay models, but vehicles execute their
assigned profiles exactly and approach-lane interactions are reduced to
the scheduler's same-lane exclusion.

Use it for large parameter sweeps (the full 160-car Fig 7.2 grid runs
in seconds); use :class:`repro.sim.World` when protocol timing, noise
and ground-truth safety matter.  ``tests/test_sim_analytic.py`` checks
the two engines agree on uncongested traffic.

Supported policies: ``vt-im`` and ``crossroads`` (the VT-style IMs the
scheduler serves).  AIM's trial-and-error loop is intrinsically tied to
closed-loop vehicle state and is only simulated by the micro engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.base import IMConfig
from repro.core.compute import LinearComputeModel
from repro.core.registry import normalize_policy
from repro.core.scheduler import ConflictScheduler
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.kinematics.arrival import (
    earliest_arrival_time,
    plan_arrival,
    solve_vt_for_toa,
    vt_plan,
)
from repro.kinematics.batch import earliest_arrival_time_batch
from repro.sim.metrics import SimResult
from repro.traffic.generator import Arrival
from repro.vehicle.record import VehicleRecord

__all__ = ["AnalyticConfig", "run_analytic"]


@dataclass
class AnalyticConfig:
    """Knobs of the analytic engine (defaults match the micro world)."""

    im: IMConfig = None
    #: One-way network latency assumed per message, seconds.
    net_delay: float = 0.003
    #: Gap between a failed request and the retry, seconds.
    retry_interval: float = 0.25
    #: Hard cap on retries per vehicle (plenty; guards degenerate input).
    max_retries: int = 4000

    def __post_init__(self):
        if self.im is None:
            self.im = IMConfig()
        if self.net_delay < 0:
            raise ValueError("net_delay must be non-negative")
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")


@dataclass
class _VehicleState:
    """Kinematic state of one vehicle between request attempts."""

    arrival: Arrival
    index: int
    #: Position of the front bumper, metres from the transmission line.
    position: float
    velocity: float
    time: float

    def coast_and_brake_to(self, t: float, approach: float, stop_margin: float):
        """Advance to time ``t``: hold speed, then safe-stop at the line.

        Mirrors the agent's behaviour while unscheduled: cruise at the
        current speed until the safe-stop clause triggers, then brake
        at ``d_max`` so the vehicle parks ``stop_margin`` before the
        line.
        """
        spec = self.arrival.spec
        dt = t - self.time
        if dt <= 0:
            return
        v = self.velocity
        if v <= 0:
            self.time = t
            return
        # Distance at which braking must start.
        brake_dist = v * v / (2.0 * spec.d_max)
        trigger = approach - stop_margin - brake_dist
        cruise_room = max(trigger - self.position, 0.0)
        t_cruise = min(dt, cruise_room / v) if v > 0 else dt
        self.position += v * t_cruise
        remaining = dt - t_cruise
        if remaining > 0:
            # Braking phase.
            t_stop = v / spec.d_max
            t_brake = min(remaining, t_stop)
            self.position += v * t_brake - 0.5 * spec.d_max * t_brake ** 2
            self.velocity = max(v - spec.d_max * t_brake, 0.0)
        self.time = t


def run_analytic(
    policy: str,
    arrivals: Sequence[Arrival],
    config: Optional[AnalyticConfig] = None,
    geometry: Optional[IntersectionGeometry] = None,
    conflicts: Optional[ConflictTable] = None,
) -> SimResult:
    """Run an arrival list through the ideal-vehicle engine.

    Returns the same :class:`~repro.sim.metrics.SimResult` shape as the
    micro engine (network/safety fields are zeroed: there is no radio
    or ground-truth monitor here).
    """
    policy = normalize_policy(policy)
    if policy not in ("vt-im", "crossroads"):
        raise ValueError(f"analytic engine supports VT-style IMs, not {policy!r}")
    config = config if config is not None else AnalyticConfig()
    geometry = geometry if geometry is not None else IntersectionGeometry()
    if conflicts is None:
        conflicts = ConflictTable(geometry)
    scheduler = ConflictScheduler(conflicts, v_min=config.im.v_min)
    compute = LinearComputeModel()
    im_cfg = config.im
    approach = geometry.approach_length
    stop_margin = 0.05

    is_crossroads = policy == "crossroads"
    rtd_buffer = 0.0 if is_crossroads else im_cfg.wc_rtd * im_cfg.v_max

    # Event queue of pending request attempts: (time, index).
    states: Dict[int, _VehicleState] = {}
    records: Dict[int, VehicleRecord] = {}
    pending: List = []
    ordered = sorted(arrivals, key=lambda a: a.time)
    for index, arrival in enumerate(ordered):
        states[index] = _VehicleState(
            arrival=arrival,
            index=index,
            position=0.0,
            velocity=min(arrival.speed, arrival.spec.v_max),
            time=arrival.time,
        )
        record = VehicleRecord(
            vehicle_id=index,
            movement_key=arrival.movement.key,
            spawn_time=arrival.time,
            spawn_speed=min(arrival.speed, arrival.spec.v_max),
        )
        records[index] = record
        pending.append((arrival.time, index, 0))
    if ordered:
        # The whole arrival list's free-flow transit bounds in one
        # cohort call (bit-identical to per-vehicle scalar calls).
        ideal = earliest_arrival_time_batch(
            [approach + geometry.crossing_distance(a.movement) + a.spec.length
             for a in ordered],
            [records[i].spawn_speed for i in range(len(ordered))],
            [a.spec.v_max for a in ordered],
            [a.spec.a_max for a in ordered],
        )
        for index in records:
            records[index].ideal_transit = float(ideal[index])

    import heapq

    heapq.heapify(pending)
    im_free = 0.0
    messages = 0

    def unserved_leader(index: int) -> Optional[int]:
        """Most recent earlier same-lane vehicle not yet scheduled."""
        lane = states[index].arrival.movement.entry
        best = None
        for j in range(index - 1, -1, -1):
            if states[j].arrival.movement.entry is lane:
                if records[j].exit_time is None:
                    best = j
                break
        return best

    while pending:
        t_req, index, attempt = heapq.heappop(pending)
        state = states[index]
        record = records[index]
        if record.exit_time is not None:
            continue
        spec = state.arrival.spec
        movement = state.arrival.movement

        # Vehicle state at the request instant (coast + safe-stop).
        state.coast_and_brake_to(t_req, approach, stop_margin)

        # Same deferral as the live agents: while the same-lane leader
        # is unscheduled, requesting would only book unusable slots and
        # gate cross traffic through the FCFS waitlist.
        if unserved_leader(index) is not None:
            if attempt + 1 < config.max_retries:
                heapq.heappush(
                    pending, (t_req + config.retry_interval, index, attempt + 1)
                )
            continue
        record.requests_sent += 1
        messages += 1
        if state.velocity < 0.05:
            record.came_to_stop = True

        # FIFO single-core IM: queueing then service.
        t_arrive_im = t_req + config.net_delay
        t_serve = max(t_arrive_im, im_free)
        scheduler.prune(t_serve)
        scheduler.note_request(index, movement, t_serve)
        service = compute.charge(reservations=len(scheduler))
        im_free = t_serve + service

        distance = max(approach - state.position, 0.01)
        v_init = min(state.velocity, spec.v_max)
        v_max = min(spec.v_max, im_cfg.v_max)

        if is_crossroads:
            start = max(t_req + im_cfg.wc_rtd, im_free + config.net_delay)
            # Vehicle holds v_init until TE (bounded by the line).
            de = max(distance - v_init * (start - t_req), 0.01)

            def planner(toa, de=de, v_init=v_init, start=start, spec=spec, v_max=v_max):
                return plan_arrival(
                    de, v_init, start, toa, spec.a_max, spec.d_max, v_max,
                    v_min=im_cfg.v_min, launch_below=im_cfg.v_arrive_floor,
                )

            etoa = start + earliest_arrival_time(de, v_init, v_max, spec.a_max)
            plan_distance = de
        else:
            start = t_serve

            def planner(toa, distance=distance, v_init=v_init, start=start,
                        spec=spec, v_max=v_max):
                plan = solve_vt_for_toa(
                    distance, v_init, start, toa, spec.a_max, spec.d_max, v_max,
                    v_min=im_cfg.v_min,
                )
                if plan is None:
                    return None
                if plan.profile.final_velocity < im_cfg.v_arrive_floor - 1e-9:
                    return None
                return plan

            etoa_plan = vt_plan(distance, v_init, v_max, start, spec.a_max, spec.d_max)
            etoa = etoa_plan.arrival_time if etoa_plan else start
            plan_distance = distance

        assignment = scheduler.assign(
            vehicle_id=index,
            movement=movement,
            planner=planner,
            etoa=etoa,
            body_length=spec.length,
            buffer=state.arrival.spec.width * 0.0 + im_cfg.base_buffer + rtd_buffer,
        )
        t_resp = im_free + config.net_delay
        messages += 1

        if assignment is None:
            if attempt + 1 >= config.max_retries:
                continue  # give up; vehicle never crosses (degenerate)
            heapq.heappush(
                pending, (t_resp + config.retry_interval, index, attempt + 1)
            )
            continue

        # Ideal execution: the committed profile is followed exactly.
        record.rtds.append(t_resp - t_req)
        profile = assignment.plan.profile
        line_pos = profile.position_at(assignment.toa)
        record.enter_time = assignment.toa
        path_len = geometry.crossing_distance(movement)
        exit_time = profile.time_at_position(line_pos + path_len + spec.length)
        record.exit_time = exit_time if exit_time is not None else assignment.toa
        record.despawn_time = record.exit_time
        messages += 1  # exit notification
        # The reservation stays booked until its clear time passes
        # (scheduler.prune drops it), exactly as live exits would.

    sim_end = max(
        (r.exit_time for r in records.values() if r.exit_time is not None),
        default=0.0,
    )
    return SimResult(
        policy=policy,
        records=list(records.values()),
        sim_duration=sim_end,
        compute_time=compute.total_time,
        compute_requests=compute.requests,
        messages_sent=messages,
    )
