"""Simulation engines and metrics.

:class:`World` is the micro-simulator: vehicles with noisy plants and
protocol state machines, a delayed/lossy channel, a real IM process,
per-node clocks, and a ground-truth safety monitor — the software twin
of the 1/10-scale testbed.  :func:`run_scenario` / :func:`run_flow`
are the two workload entry points (fixed arrival lists for Fig 7.1,
Poisson flows for Fig 7.2), and :mod:`repro.sim.flowsweep` drives the
full policy-by-flow grid of the Matlab evaluation.
"""

from repro.sim.analytic import AnalyticConfig, run_analytic
from repro.sim.engine import NodeRuntime, lane_predecessor
from repro.sim.flowsweep import FlowPoint, run_flow, run_flow_sweep
from repro.sim.metrics import SimResult, compare_policies
from repro.sim.parallel import ParallelRunner, RunTask, resolve_jobs, run_tasks
from repro.sim.replication import MetricStats, Replication, replicate, run_replicated
from repro.sim.trace import TraceRecorder, TraceSample
from repro.sim.world import World, WorldConfig, run_scenario

__all__ = [
    "AnalyticConfig",
    "FlowPoint",
    "MetricStats",
    "NodeRuntime",
    "ParallelRunner",
    "Replication",
    "RunTask",
    "TraceRecorder",
    "TraceSample",
    "replicate",
    "resolve_jobs",
    "run_replicated",
    "run_tasks",
    "SimResult",
    "World",
    "WorldConfig",
    "compare_policies",
    "lane_predecessor",
    "run_analytic",
    "run_flow",
    "run_flow_sweep",
    "run_scenario",
]
