"""Trajectory tracing for the micro-simulator.

A :class:`TraceRecorder` samples every live vehicle's kinematic state
on a fixed period and keeps the samples queryable (and exportable as
CSV).  It is how the examples draw space–time diagrams and how tests
assert trajectory-level properties that the aggregate metrics hide.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.world import World

__all__ = ["TraceRecorder", "TraceSample"]


@dataclass(frozen=True)
class TraceSample:
    """One vehicle's state at one instant."""

    time: float
    vehicle_id: int
    movement_key: str
    #: Front-bumper route coordinate (0 = transmission line).
    position: float
    velocity: float
    state: str
    has_plan: bool

    @property
    def in_box(self) -> bool:
        """True while any part of the body can be inside the box.

        Uses the testbed's 3 m approach; exact membership is the
        world's job — this is a display helper.
        """
        return self.position >= 3.0


class TraceRecorder:
    """Samples a :class:`~repro.sim.World`'s vehicles periodically.

    Parameters
    ----------
    world:
        The world to record (attach *before* running it).
    period:
        Sampling period, seconds.
    """

    def __init__(self, world: World, period: float = 0.1):
        if period <= 0:
            raise ValueError("period must be positive")
        self.world = world
        self.period = period
        self.samples: List[TraceSample] = []
        #: Per-vehicle index maintained at append time so trajectory
        #: queries stop re-scanning the whole sample list (the sampler
        #: appends in time order, so each bucket is already sorted).
        self._by_vehicle: Dict[int, List[TraceSample]] = {}
        world.env.process(self._sampler())

    def _append(self, sample: TraceSample) -> None:
        """Record one sample in both the flat list and the index."""
        self.samples.append(sample)
        self._by_vehicle.setdefault(sample.vehicle_id, []).append(sample)

    def _sampler(self):
        while True:
            now = self.world.env.now
            for vehicle in self.world.vehicles:
                if vehicle.done:
                    continue
                self._append(
                    TraceSample(
                        time=now,
                        vehicle_id=vehicle.info.vehicle_id,
                        movement_key=vehicle.info.movement.key,
                        position=vehicle.front,
                        velocity=vehicle.speed,
                        state=vehicle.state.value,
                        has_plan=vehicle.plan is not None,
                    )
                )
            yield self.world.env.timeout(self.period)

    # -- queries ---------------------------------------------------------------
    @property
    def vehicle_ids(self) -> List[int]:
        """Ids seen in the trace, ascending (O(V log V), no re-scan)."""
        return sorted(self._by_vehicle)

    def trajectory(self, vehicle_id: int) -> List[TraceSample]:
        """All samples of one vehicle, time-ordered (indexed lookup)."""
        return list(self._by_vehicle.get(vehicle_id, ()))

    def at(self, time: float, tolerance: Optional[float] = None) -> List[TraceSample]:
        """Samples from the tick nearest ``time``."""
        tolerance = tolerance if tolerance is not None else self.period / 2
        return [s for s in self.samples if abs(s.time - time) <= tolerance]

    def by_lane(self) -> Dict[str, List[TraceSample]]:
        """Samples grouped by entry approach (the movement key prefix)."""
        lanes: Dict[str, List[TraceSample]] = {}
        for sample in self.samples:
            lanes.setdefault(sample.movement_key.split("-")[0], []).append(sample)
        return lanes

    # -- export -----------------------------------------------------------------
    FIELDS = ("time", "vehicle_id", "movement_key", "position", "velocity",
              "state", "has_plan")

    def to_csv(self, path: Optional[str] = None) -> str:
        """Write the trace as CSV; returns the text (and writes ``path``)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.FIELDS)
        for s in self.samples:
            writer.writerow([
                f"{s.time:.3f}", s.vehicle_id, s.movement_key,
                f"{s.position:.4f}", f"{s.velocity:.4f}", s.state,
                int(s.has_plan),
            ])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    @classmethod
    def parse_csv(cls, text: str) -> List[TraceSample]:
        """Inverse of :meth:`to_csv` — rebuild samples from CSV text.

        Values round-trip at the export precision (time %.3f,
        position/velocity %.4f), which is what the round-trip test
        pins.
        """
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header is None or tuple(header) != cls.FIELDS:
            raise ValueError(f"unexpected CSV header {header!r}")
        samples: List[TraceSample] = []
        for row in reader:
            if not row:
                continue
            time_s, vehicle_id, movement_key, pos, vel, state, has_plan = row
            samples.append(
                TraceSample(
                    time=float(time_s),
                    vehicle_id=int(vehicle_id),
                    movement_key=movement_key,
                    position=float(pos),
                    velocity=float(vel),
                    state=state,
                    has_plan=bool(int(has_plan)),
                )
            )
        return samples
