"""Multi-seed replication statistics.

A single stochastic run is a sample, not a result.  This module runs
the same workload across noise seeds and aggregates every metric in
``SimResult.summary()`` with mean / standard deviation / a normal-theory
95% confidence half-width — the minimum statistical hygiene for
comparing policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.perf import merge_snapshots
from repro.sim.metrics import SimResult
from repro.sim.parallel import ParallelRunner, RunTask, resolve_jobs
from repro.sim.world import WorldConfig, run_scenario
from repro.traffic.generator import Arrival

__all__ = ["MetricStats", "Replication", "replicate", "run_replicated"]


@dataclass(frozen=True)
class MetricStats:
    """Aggregate of one metric across seeds."""

    mean: float
    std: float
    ci95: float
    values: "tuple[float, ...]"

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


class Replication:
    """Results of one workload replicated over seeds."""

    def __init__(self, results: Sequence[SimResult]):
        if not results:
            raise ValueError("need at least one result")
        self.results = list(results)
        self._stats: Dict[str, MetricStats] = {}
        keys = self.results[0].summary().keys()
        for key in keys:
            values = tuple(float(r.summary()[key]) for r in self.results)
            arr = np.array(values)
            std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
            ci95 = 1.96 * std / np.sqrt(len(arr)) if len(arr) > 1 else 0.0
            self._stats[key] = MetricStats(
                mean=float(arr.mean()), std=std, ci95=float(ci95), values=values
            )

    @property
    def policy(self) -> str:
        return self.results[0].policy

    def metric(self, name: str) -> MetricStats:
        """Stats for one summary metric (e.g. ``"throughput"``)."""
        if name == "throughput":
            values = tuple(r.throughput for r in self.results)
            arr = np.array(values)
            std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
            ci95 = 1.96 * std / np.sqrt(len(arr)) if len(arr) > 1 else 0.0
            return MetricStats(float(arr.mean()), std, float(ci95), values)
        if name not in self._stats:
            raise KeyError(f"unknown metric {name!r}; have {sorted(self._stats)}")
        return self._stats[name]

    @property
    def all_safe(self) -> bool:
        """True when no replicate saw a collision."""
        return all(r.collisions == 0 for r in self.results)

    def merged_perf(self) -> Dict[str, float]:
        """Fold every replicate's perf snapshot into one.

        Perf dicts are plain floats, so they travel back from
        :class:`~repro.sim.parallel.ParallelRunner` workers unchanged;
        the ``count.*`` keys (per-machine protocol counters included)
        are deterministic per seed, so the merge is identical under
        ``jobs=1`` and ``jobs=2``.  Wall-clock ``time.*`` keys are
        summed too but naturally vary run to run.
        """
        return merge_snapshots([r.perf for r in self.results])

    def summary_table(self) -> "tuple[list, list]":
        """(headers, rows) of mean ± CI for every metric."""
        headers = ["metric", "mean", "std", "ci95"]
        rows = [
            [name, stats.mean, stats.std, stats.ci95]
            for name, stats in sorted(self._stats.items())
        ]
        return headers, rows


def replicate(
    run_fn: Callable[[int], SimResult],
    seeds: Sequence[int],
    jobs: Union[int, str, None] = None,
) -> Replication:
    """Run ``run_fn(seed)`` for every seed and aggregate.

    With ``jobs > 1`` the replicates run on a process pool when
    ``run_fn`` is picklable (a module-level function); closures and
    lambdas fall back to a serial loop automatically.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    tasks = [RunTask(run_fn, (seed,), label=f"seed={seed}") for seed in seeds]
    return Replication(ParallelRunner(jobs).map(tasks))


def _replicate_cell(
    policy: str,
    arrivals: "tuple[Arrival, ...]",
    config: Optional[WorldConfig],
    seed: int,
) -> SimResult:
    """Module-level worker for one replicate (picklable for the pool)."""
    return run_scenario(policy, arrivals, config=config, seed=seed)


def run_replicated(
    policy: str,
    arrivals: Sequence[Arrival],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    config: Optional[WorldConfig] = None,
    jobs: Union[int, str, None] = None,
) -> Replication:
    """Replicate one micro-simulation workload over noise seeds.

    The arrival list (the workload) is fixed; only the world's noise —
    plant, sensors, clocks, network — varies with the seed.  ``jobs``
    (or the ``REPRO_JOBS`` environment variable) spreads the seeds over
    a process pool; each seed fully determines its run, so parallel
    results are bit-identical to serial ones.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1:
        tasks = [
            RunTask(
                _replicate_cell,
                (policy, tuple(arrivals), config, seed),
                label=f"{policy} seed={seed}",
            )
            for seed in seeds
        ]
        return Replication(ParallelRunner(n_jobs).map(tasks))
    return replicate(
        lambda seed: run_scenario(policy, arrivals, config=config, seed=seed),
        seeds,
    )
