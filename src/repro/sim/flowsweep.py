"""Flow-rate sweeps: the Fig 7.2 evaluation harness.

The paper's Matlab study routes 160 cars through the intersection at
input flows of 0.05-1.25 cars/lane/second and compares throughput,
computation time and network traffic of AIM, VT-IM and Crossroads,
using *the same* input traffic for every policy.  :func:`run_flow`
reproduces one grid cell and :func:`run_flow_sweep` the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.registry import portable_name
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.sim.metrics import SimResult
from repro.sim.parallel import ParallelRunner, RunTask, resolve_jobs
from repro.sim.world import WorldConfig, run_scenario
from repro.traffic.generator import PoissonTraffic

__all__ = ["FlowPoint", "run_flow", "run_flow_sweep"]

#: The paper's Fig 7.2 x-axis grid (cars/lane/second).
PAPER_FLOW_RATES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0, 1.25)


@dataclass(frozen=True)
class FlowPoint:
    """One (policy, flow) grid cell."""

    policy: str
    flow_rate: float
    result: SimResult

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def average_delay(self) -> float:
        return self.result.average_delay

    @property
    def compute_time(self) -> float:
        return self.result.compute_time

    @property
    def messages(self) -> int:
        return self.result.messages_sent


def run_flow(
    policy: str,
    flow_rate: float,
    n_cars: int = 160,
    seed: int = 7,
    config: Optional[WorldConfig] = None,
    geometry: Optional[IntersectionGeometry] = None,
    conflicts: Optional[ConflictTable] = None,
) -> FlowPoint:
    """Run one policy at one flow rate.

    The traffic seed depends only on ``(flow_rate, seed)``, so every
    policy sees the identical arrival sequence — "the same input
    traffic flow and sequence of vehicle for all simulator to have a
    fair comparison".
    """
    traffic = PoissonTraffic(flow_rate, seed=seed + int(flow_rate * 1000))
    arrivals = traffic.generate(n_cars)
    result = run_scenario(
        policy,
        arrivals,
        config=config,
        geometry=geometry,
        conflicts=conflicts,
        seed=seed,
    )
    return FlowPoint(policy=result.policy, flow_rate=flow_rate, result=result)


def _flow_cell(
    policy: str,
    flow: float,
    n_cars: int,
    seed: int,
    config: Optional[WorldConfig],
) -> FlowPoint:
    """Module-level worker for one grid cell (picklable for the pool).

    Rebuilds geometry/conflicts in the worker process; construction is
    deterministic, so results match the serial shared-geometry path
    bit for bit.
    """
    return run_flow(policy, flow, n_cars=n_cars, seed=seed, config=config)


def run_flow_sweep(
    policies: Sequence[str] = ("aim", "vt-im", "crossroads"),
    flow_rates: Sequence[float] = PAPER_FLOW_RATES,
    n_cars: int = 160,
    seed: int = 7,
    config: Optional[WorldConfig] = None,
    jobs: Union[int, str, None] = None,
) -> Dict[str, List[FlowPoint]]:
    """The full Fig 7.2 grid: every policy at every flow rate.

    Returns ``{policy: [FlowPoint per flow rate]}``.  With ``jobs > 1``
    (or ``REPRO_JOBS`` set) the grid cells run on a process pool via
    :mod:`repro.sim.parallel`; every cell's seed is fixed up front, so
    the result is bit-identical to a serial run.  Serially, geometry
    analysis is shared across all runs.
    """
    policies = list(policies)
    flow_rates = [float(flow) for flow in flow_rates]
    if not policies:
        raise ValueError("policies must be non-empty")
    if not flow_rates:
        raise ValueError("flow_rates must be non-empty")
    out: Dict[str, List[FlowPoint]] = {}
    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1:
        # Tasks must stay picklable, so they carry policy *names*, not
        # specs — qualified with the registering module for plugin
        # policies, so a worker process that never imported the plugin
        # re-runs its registration before resolving (see
        # :func:`repro.core.registry.portable_name`).
        tasks = [
            RunTask(
                _flow_cell,
                (portable_name(policy), flow, n_cars, seed, config),
                label=f"{policy}@{flow}",
            )
            for policy in policies
            for flow in flow_rates
        ]
        results = ParallelRunner(n_jobs).map(tasks)
        for index, policy in enumerate(policies):
            points = results[
                index * len(flow_rates) : (index + 1) * len(flow_rates)
            ]
            out[points[0].policy] = points
        return out
    geometry = IntersectionGeometry()
    conflicts = ConflictTable(geometry)
    for policy in policies:
        points = []
        for flow in flow_rates:
            points.append(
                run_flow(
                    policy,
                    flow,
                    n_cars=n_cars,
                    seed=seed,
                    config=config,
                    geometry=geometry,
                    conflicts=conflicts,
                )
            )
        out[points[0].policy] = points
    return out
