"""The micro-simulator: one intersection's node runtime + its workload.

A :class:`World` assembles one complete experiment:

* the intersection geometry and (for VT-style policies) its conflict
  table;
* a wireless medium behind the
  :class:`~repro.network.transport.Transport` seam (the in-process
  channel with the testbed's delay distribution and optional loss);
* a single :class:`~repro.sim.engine.NodeRuntime` — the IM process of
  the chosen policy plus the per-lane spawn wiring, the ground-truth
  safety monitor and the reservation watchdog;
* a spawner that turns an arrival list into protocol-running
  :class:`~repro.vehicle.BaseVehicle` agents, each with its own
  drifting clock and noisy plant.

``world.run()`` advances the DES until every vehicle has despawned (or
a hard time limit is hit) and returns a
:class:`~repro.sim.metrics.SimResult`.
:class:`~repro.grid.world.GridWorld` composes N of the same runtimes
on one environment; this class is the single-node instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aim import AimConfig
from repro.core.base import IMConfig
from repro.core.registry import resolve_policy
from repro.des import Environment
from repro.faults import FaultConfig, FaultInjector
from repro.geometry.collision import OrientedRect
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.network.delay import DelayModel, testbed_delay_model
from repro.network.transport import default_transport
from repro.obs.events import EventLog
from repro.obs.spans import build_spans, span_stats
from repro.perf import PerfCounters
from repro.sensors.plant import PlantConfig
from repro.sim.engine import NodeRuntime
from repro.sim.metrics import SimResult
from repro.traffic.generator import Arrival
from repro.vehicle.agent import AgentConfig, BaseVehicle

__all__ = ["World", "WorldConfig", "run_scenario"]


@dataclass
class WorldConfig:
    """Experiment-level knobs (testbed defaults throughout)."""

    im: IMConfig = field(default_factory=IMConfig)
    agent: AgentConfig = field(default_factory=AgentConfig)
    plant: PlantConfig = field(default_factory=PlantConfig)
    aim: AimConfig = field(default_factory=AimConfig)
    #: One-way network delay model (None -> testbed gamma, 7.5 ms WC).
    delay_model: Optional[DelayModel] = None
    message_loss: float = 0.0
    #: Fault-injection configuration (None -> no injector attached;
    #: a *null* config attaches an injector that never fires — both
    #: are bit-identical to the fault-free path because the injector
    #: draws from its own RNG stream).  Frozen/picklable, so it rides
    #: into the parallel runner's worker processes unchanged.
    faults: Optional[FaultConfig] = None
    #: Initial clock offsets are uniform in +-this, seconds.
    clock_offset_bound: float = 0.5
    #: Clock drifts are uniform in +-this (fractional).
    clock_drift_bound: float = 20e-6
    #: Safety-monitor sampling period, seconds.
    safety_dt: float = 0.05
    #: Hard wall on simulated seconds (runaway guard).
    max_sim_time: float = 3600.0
    #: Disable plant/sensor noise (for deterministic unit tests).
    ideal_vehicles: bool = False
    #: Physical actuation margin over the *advertised* limits: plans
    #: use ``spec.a_max``; the plant can do slightly more, so the
    #: tracking loop can recover lag even on full-throttle launches.
    plant_headroom: float = 1.15

    def __post_init__(self):
        # Fail fast with a clear message: bad experiment knobs used to
        # surface only as deep kinematics/DES errors mid-run.
        if self.safety_dt <= 0:
            raise ValueError("safety_dt must be positive")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
        if not 0.0 <= self.message_loss < 1.0:
            raise ValueError("message_loss must be in [0, 1)")
        if self.clock_offset_bound < 0:
            raise ValueError("clock_offset_bound must be non-negative")
        if self.clock_drift_bound < 0:
            raise ValueError("clock_drift_bound must be non-negative")
        if self.plant_headroom < 1.0:
            raise ValueError("plant_headroom must be >= 1.0")


class World:
    """One wired-up simulation run.

    Parameters
    ----------
    policy:
        ``"vt-im"``, ``"crossroads"`` or ``"aim"``.
    arrivals:
        The workload (time-sorted :class:`~repro.traffic.Arrival` s).
    geometry:
        Intersection layout (testbed default when omitted).
    conflicts:
        Reusable conflict table (recomputed when omitted; pass one in
        when sweeping to amortise the geometry analysis).
    config:
        World knobs.
    seed:
        Master seed: spawns per-vehicle RNGs and clock parameters.
    obs:
        Optional :class:`~repro.obs.EventLog` threaded through every
        runtime layer (kernel, channel, protocol machines, vehicles,
        IM, scheduler).  Tracing never touches an RNG and never
        schedules a DES event, so a traced run's ``summary()`` is
        bit-identical to an untraced one.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` wired through the
        kernel (event rate), the transport (sent/delivered/dropped/
        in-flight) and the node runtime (queue depth, IM backlog,
        degraded population, occupancy gauges, online RTD histogram).
        The same bit-identity contract as ``obs`` applies; the
        snapshot rides on :attr:`SimResult.metrics`.
    transport_factory:
        Optional callable with the
        :func:`~repro.network.transport.default_transport` signature,
        returning the :class:`~repro.network.transport.Transport` the
        world runs on.  The injection seam for alternative media —
        the serve mode's socket fabric, the codec round-trip harness —
        without the world ever naming a concrete implementation.
    """

    def __init__(
        self,
        policy: str,
        arrivals: Sequence[Arrival],
        geometry: Optional[IntersectionGeometry] = None,
        conflicts: Optional[ConflictTable] = None,
        config: Optional[WorldConfig] = None,
        seed: Optional[int] = None,
        obs: Optional[EventLog] = None,
        metrics=None,
        transport_factory=None,
    ):
        self._spec = resolve_policy(policy)
        self.policy = self._spec.name
        self.arrivals = sorted(arrivals, key=lambda a: a.time)
        self.config = config if config is not None else WorldConfig()
        self.geometry = geometry if geometry is not None else IntersectionGeometry()
        self.rng = np.random.default_rng(seed)
        self.obs = obs
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )

        self.env = Environment()
        if obs is not None:
            self.env.obs = obs
        if self.metrics is not None:
            self.env.metrics = self.metrics.counter("des.events")
        delay = (
            self.config.delay_model
            if self.config.delay_model is not None
            else testbed_delay_model()
        )
        # One master-RNG draw for the channel, *whether or not* faults
        # are configured: the injector's stream is derived from the
        # same draw (child key 1), so attaching a null injector leaves
        # every other random sequence in the simulation untouched —
        # the differential regression test pins this.
        channel_seed = int(self.rng.integers(2 ** 63))
        self.faults: Optional[FaultInjector] = None
        if self.config.faults is not None:
            self.faults = FaultInjector(
                self.config.faults,
                rng=np.random.default_rng([channel_seed, 1]),
                im_address=self.config.im.address,
            )
        make_transport = (
            transport_factory if transport_factory is not None
            else default_transport
        )
        self.channel = make_transport(
            self.env,
            delay_model=delay,
            loss_probability=self.config.message_loss,
            rng=np.random.default_rng(channel_seed),
            faults=self.faults,
            obs=obs,
            metrics=self.metrics,
        )
        if self._spec.needs_conflicts and conflicts is None:
            conflicts = ConflictTable(self.geometry)
        self.conflicts = conflicts
        self._node = NodeRuntime(
            self.env,
            self._spec,
            self.channel,
            self.geometry,
            conflicts,
            self.config,
            im_address=self.config.im.address,
            name="world",
            obs=obs,
            metrics=self.metrics,
        )
        self.im = self._node.im
        #: Wall-clock timers for this run (counters are harvested from
        #: the kernel / IM at :meth:`result` time).
        self.perf = PerfCounters()
        self.env.process(self._spawner())
        self.env.process(self._node.safety_monitor())
        self.env.process(self._node.im_watchdog())

    # -- node-runtime views --------------------------------------------------
    @property
    def vehicles(self) -> List[BaseVehicle]:
        return self._node.vehicles

    @property
    def collisions(self) -> int:
        return self._node.collisions

    @property
    def buffer_violations(self) -> int:
        return self._node.buffer_violations

    @property
    def min_separation(self) -> float:
        return self._node.min_separation

    @property
    def collision_episodes(self) -> List[Tuple[float, Tuple[int, int]]]:
        """``(onset_time, (id_a, id_b))`` per collision episode."""
        return self._node.collision_episodes

    @property
    def safety_checks(self) -> List[Callable[[float], None]]:
        """Extra per-tick safety checks run by the node's monitor."""
        return self._node.safety_checks

    @property
    def on_spawn(self) -> Optional[Callable[[BaseVehicle], None]]:
        """Hook fired with each vehicle right after it spawns (the
        scenario layer attaches behaviour processes here)."""
        return self._node.on_spawn

    @on_spawn.setter
    def on_spawn(self, hook: Optional[Callable[[BaseVehicle], None]]) -> None:
        self._node.on_spawn = hook

    # -- spawning -----------------------------------------------------------
    def _spawner(self):
        for index, arrival in enumerate(self.arrivals):
            wait = arrival.time - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            self._spawn(index, arrival)

    def _spawn(self, index: int, arrival: Arrival) -> BaseVehicle:
        node = self._node
        info = node.vehicle_info(index, arrival.spec, arrival.movement)
        radio = self.channel.attach(f"V{index}")
        clock = node.make_clock(self.rng)
        return node.add_vehicle(info, radio, clock, arrival.speed, self.rng)

    # -- ground-truth poses -----------------------------------------------------
    def pose_of(self, vehicle: BaseVehicle) -> OrientedRect:
        """World-frame footprint of a vehicle's *body* (no buffer)."""
        return self._node.pose_of(vehicle)

    def _in_box(self, vehicle: BaseVehicle) -> bool:
        return self._node.in_box(vehicle)

    # -- execution ---------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return bool(self.vehicles) and all(v.done for v in self.vehicles) and len(
            self.vehicles
        ) == len(self.arrivals)

    def run(self) -> SimResult:
        """Run to completion (all vehicles despawned) and collect results."""
        step = 1.0
        with self.perf.timer("sim_run"):
            while not self.all_done and self.env.now < self.config.max_sim_time:
                self.env.run(until=self.env.now + step)
        return self.result()

    def result(self) -> SimResult:
        """Snapshot the metrics of the current state."""
        if self.metrics is not None:
            # Final gauge/histogram sample so round trips completed
            # after the last safety tick are still counted.
            self._node.sample_metrics(self.env.now)
        return self._node.result(
            stats=self.channel.stats,
            per_endpoint=False,
            fault_injections=self.faults.snapshot() if self.faults else {},
            perf=self._node.perf_snapshot(
                base=PerfCounters(times=self.perf.times),
                des_events=self.env.events_processed,
            ),
            obs_stats=(
                span_stats(build_spans(self.obs))
                if self.obs is not None
                else None
            ),
            metrics_snapshot=(
                self.metrics.snapshot() if self.metrics is not None else None
            ),
        )


def run_scenario(
    policy: str,
    arrivals: Sequence[Arrival],
    config: Optional[WorldConfig] = None,
    conflicts: Optional[ConflictTable] = None,
    geometry: Optional[IntersectionGeometry] = None,
    seed: Optional[int] = None,
    obs: Optional[EventLog] = None,
    metrics=None,
    transport_factory=None,
) -> SimResult:
    """One-call wrapper: build a :class:`World`, run it, return results."""
    world = World(
        policy,
        arrivals,
        geometry=geometry,
        conflicts=conflicts,
        config=config,
        seed=seed,
        obs=obs,
        metrics=metrics,
        transport_factory=transport_factory,
    )
    return world.run()
