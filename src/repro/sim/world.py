"""The micro-simulator: vehicles + network + IM + safety monitor.

A :class:`World` assembles one complete experiment:

* the intersection geometry and (for VT-style policies) its conflict
  table;
* a wireless :class:`~repro.network.Channel` with the testbed's delay
  distribution and optional loss;
* one IM process of the chosen policy;
* a spawner that turns an arrival list into protocol-running
  :class:`~repro.vehicle.BaseVehicle` agents, each with its own
  drifting clock and noisy plant, registered into per-lane queues for
  the car-following clamp;
* a ground-truth safety monitor sampling all in-box footprints and
  recording body collisions, buffered near-misses and the minimum
  separation seen.

``world.run()`` advances the DES until every vehicle has despawned (or
a hard time limit is hit) and returns a
:class:`~repro.sim.metrics.SimResult`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aim import AimConfig
from repro.core.base import IMConfig
from repro.core.policy import make_im
from repro.core.registry import resolve_policy
from repro.des import Environment
from repro.faults import FaultConfig, FaultInjector
from repro.geometry.collision import OrientedRect, rects_overlap
from repro.geometry.conflicts import ConflictTable
from repro.geometry.layout import IntersectionGeometry
from repro.network.channel import Channel
from repro.network.delay import DelayModel, testbed_delay_model
from repro.obs.events import EventLog
from repro.obs.spans import build_spans, span_stats
from repro.perf import PerfCounters
from repro.sensors.plant import PlantConfig
from repro.sim.metrics import SimResult
from repro.timesync.clock import Clock
from repro.traffic.generator import Arrival
from repro.vehicle.agent import AgentConfig, BaseVehicle, make_vehicle
from repro.vehicle.spec import VehicleInfo

__all__ = ["World", "WorldConfig", "run_scenario"]


@dataclass
class WorldConfig:
    """Experiment-level knobs (testbed defaults throughout)."""

    im: IMConfig = field(default_factory=IMConfig)
    agent: AgentConfig = field(default_factory=AgentConfig)
    plant: PlantConfig = field(default_factory=PlantConfig)
    aim: AimConfig = field(default_factory=AimConfig)
    #: One-way network delay model (None -> testbed gamma, 7.5 ms WC).
    delay_model: Optional[DelayModel] = None
    message_loss: float = 0.0
    #: Fault-injection configuration (None -> no injector attached;
    #: a *null* config attaches an injector that never fires — both
    #: are bit-identical to the fault-free path because the injector
    #: draws from its own RNG stream).  Frozen/picklable, so it rides
    #: into the parallel runner's worker processes unchanged.
    faults: Optional[FaultConfig] = None
    #: Initial clock offsets are uniform in +-this, seconds.
    clock_offset_bound: float = 0.5
    #: Clock drifts are uniform in +-this (fractional).
    clock_drift_bound: float = 20e-6
    #: Safety-monitor sampling period, seconds.
    safety_dt: float = 0.05
    #: Hard wall on simulated seconds (runaway guard).
    max_sim_time: float = 3600.0
    #: Disable plant/sensor noise (for deterministic unit tests).
    ideal_vehicles: bool = False
    #: Physical actuation margin over the *advertised* limits: plans
    #: use ``spec.a_max``; the plant can do slightly more, so the
    #: tracking loop can recover lag even on full-throttle launches.
    plant_headroom: float = 1.15

    def __post_init__(self):
        # Fail fast with a clear message: bad experiment knobs used to
        # surface only as deep kinematics/DES errors mid-run.
        if self.safety_dt <= 0:
            raise ValueError("safety_dt must be positive")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
        if not 0.0 <= self.message_loss < 1.0:
            raise ValueError("message_loss must be in [0, 1)")
        if self.clock_offset_bound < 0:
            raise ValueError("clock_offset_bound must be non-negative")
        if self.clock_drift_bound < 0:
            raise ValueError("clock_drift_bound must be non-negative")
        if self.plant_headroom < 1.0:
            raise ValueError("plant_headroom must be >= 1.0")


class World:
    """One wired-up simulation run.

    Parameters
    ----------
    policy:
        ``"vt-im"``, ``"crossroads"`` or ``"aim"``.
    arrivals:
        The workload (time-sorted :class:`~repro.traffic.Arrival` s).
    geometry:
        Intersection layout (testbed default when omitted).
    conflicts:
        Reusable conflict table (recomputed when omitted; pass one in
        when sweeping to amortise the geometry analysis).
    config:
        World knobs.
    seed:
        Master seed: spawns per-vehicle RNGs and clock parameters.
    obs:
        Optional :class:`~repro.obs.EventLog` threaded through every
        runtime layer (kernel, channel, protocol machines, vehicles,
        IM, scheduler).  Tracing never touches an RNG and never
        schedules a DES event, so a traced run's ``summary()`` is
        bit-identical to an untraced one.
    """

    def __init__(
        self,
        policy: str,
        arrivals: Sequence[Arrival],
        geometry: Optional[IntersectionGeometry] = None,
        conflicts: Optional[ConflictTable] = None,
        config: Optional[WorldConfig] = None,
        seed: Optional[int] = None,
        obs: Optional[EventLog] = None,
    ):
        self._spec = resolve_policy(policy)
        self.policy = self._spec.name
        self.arrivals = sorted(arrivals, key=lambda a: a.time)
        self.config = config if config is not None else WorldConfig()
        self.geometry = geometry if geometry is not None else IntersectionGeometry()
        self.rng = np.random.default_rng(seed)
        self.obs = obs

        self.env = Environment()
        if obs is not None:
            self.env.obs = obs
        delay = (
            self.config.delay_model
            if self.config.delay_model is not None
            else testbed_delay_model()
        )
        # One master-RNG draw for the channel, *whether or not* faults
        # are configured: the injector's stream is derived from the
        # same draw (child key 1), so attaching a null injector leaves
        # every other random sequence in the simulation untouched —
        # the differential regression test pins this.
        channel_seed = int(self.rng.integers(2 ** 63))
        self.faults: Optional[FaultInjector] = None
        if self.config.faults is not None:
            self.faults = FaultInjector(
                self.config.faults,
                rng=np.random.default_rng([channel_seed, 1]),
                im_address=self.config.im.address,
            )
        self.channel = Channel(
            self.env,
            delay_model=delay,
            loss_probability=self.config.message_loss,
            rng=np.random.default_rng(channel_seed),
            faults=self.faults,
            obs=obs,
        )
        if self._spec.needs_conflicts and conflicts is None:
            conflicts = ConflictTable(self.geometry)
        self.conflicts = conflicts
        self.im = make_im(
            self._spec,
            self.env,
            self.channel,
            self.geometry,
            conflicts=conflicts,
            config=self.config.im,
            aim_config=self.config.aim,
        )
        if obs is not None:
            # Injected post-construction to keep the policy-plugin IM
            # builder signature stable; safe because DES processes
            # scheduled in the constructor only execute under env.run().
            self.im.obs = obs
            scheduler = getattr(self.im, "scheduler", None)
            if scheduler is not None:
                scheduler.obs = obs
                scheduler.obs_now = lambda: self.env.now
        self.vehicles: List[BaseVehicle] = []
        self._lanes: Dict[str, List[BaseVehicle]] = {}
        self.collisions = 0
        self.buffer_violations = 0
        self.min_separation = math.inf
        #: Pairs currently in body overlap.  A pair that separates is
        #: cleared, so a later re-collision opens a *new* episode —
        #: ``collisions`` counts distinct contact events, not pairs.
        self._touching_pairs = set()
        #: ``(onset_time, (id_a, id_b))`` per collision episode; always
        #: satisfies ``len(collision_episodes) == collisions``.
        self.collision_episodes: List[Tuple[float, Tuple[int, int]]] = []
        #: Optional hook called with each vehicle right after it spawns
        #: (the scenario layer attaches behaviour processes here).  Must
        #: never draw from an RNG shared with the world: a ``None`` hook
        #: and a no-op hook are bit-identical.
        self.on_spawn: Optional[Callable[[BaseVehicle], None]] = None
        #: Extra per-tick safety checks, called as ``check(now)`` from
        #: the safety monitor after the pairwise sweep.  Checks only
        #: *observe* (no RNG, no DES events), so attaching one never
        #: changes a run's summary.
        self.safety_checks: List[Callable[[float], None]] = []
        #: Wall-clock timers for this run (counters are harvested from
        #: the kernel / IM at :meth:`result` time).
        self.perf = PerfCounters()
        self.env.process(self._spawner())
        self.env.process(self._safety_monitor())
        self.env.process(self._im_watchdog())

    # -- spawning -----------------------------------------------------------
    def _spawner(self):
        for index, arrival in enumerate(self.arrivals):
            wait = arrival.time - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            self._spawn(index, arrival)

    def _spawn(self, index: int, arrival: Arrival) -> BaseVehicle:
        cfg = self.config
        info = VehicleInfo(
            vehicle_id=index,
            spec=arrival.spec,
            movement=arrival.movement,
            buffer=cfg.im.base_buffer,
        )
        radio = self.channel.attach(f"V{index}")
        clock = Clock(
            offset=float(self.rng.uniform(-cfg.clock_offset_bound, cfg.clock_offset_bound)),
            drift=float(self.rng.uniform(-cfg.clock_drift_bound, cfg.clock_drift_bound)),
            epoch=self.env.now,
            rng=np.random.default_rng(self.rng.integers(2 ** 63)),
        )
        lane_key = arrival.movement.entry.value
        lane = self._lanes.setdefault(lane_key, [])

        def predecessor(lane=lane, me_index=len(lane)):
            for earlier in reversed(lane[:me_index]):
                if not earlier.done:
                    return earlier
            return None

        plant_config = cfg.plant
        if cfg.ideal_vehicles:
            plant_config = PlantConfig(
                a_max=plant_config.a_max,
                d_max=plant_config.d_max,
                v_max=plant_config.v_max,
                tau=1e-3,
                accel_noise_std=0.0,
                encoder=plant_config.encoder,
            )
        vehicle = make_vehicle(
            self._spec,
            self.env,
            info,
            radio,
            clock,
            path_length=self.geometry.crossing_distance(arrival.movement),
            approach_length=self.geometry.approach_length,
            spawn_speed=min(arrival.speed, arrival.spec.v_max),
            plant_config=plant_config,
            im_address=cfg.im.address,
            predecessor=predecessor,
            config=cfg.agent,
            rng=np.random.default_rng(self.rng.integers(2 ** 63)),
            plant_headroom=1.0 if cfg.ideal_vehicles else cfg.plant_headroom,
            obs=self.obs,
        )
        if cfg.ideal_vehicles:
            vehicle.plant.ideal = True
        lane.append(vehicle)
        self.vehicles.append(vehicle)
        if self.on_spawn is not None:
            self.on_spawn(vehicle)
        return vehicle

    # -- ground-truth poses -----------------------------------------------------
    def pose_of(self, vehicle: BaseVehicle) -> OrientedRect:
        """World-frame footprint of a vehicle's *body* (no buffer)."""
        movement = vehicle.info.movement
        spec = vehicle.info.spec
        path = self.geometry.path(movement)
        approach = self.geometry.approach_length
        centre_s = vehicle.front - spec.length / 2.0
        if centre_s < approach:
            entry = self.geometry.entry_point(movement.entry)
            fwd = np.array(movement.entry.inbound_unit)
            point = entry - (approach - centre_s) * fwd
            heading = movement.entry.heading
        else:
            s = centre_s - approach
            if s <= path.length:
                point = path.point_at(s)
                heading = path.heading_at(s)
            else:
                end = path.point_at(path.length)
                heading = path.heading_at(path.length)
                point = end + (s - path.length) * np.array(
                    [math.cos(heading), math.sin(heading)]
                )
        return OrientedRect(
            cx=float(point[0]),
            cy=float(point[1]),
            heading=float(heading),
            length=spec.length,
            width=spec.width,
        )

    def _in_box(self, vehicle: BaseVehicle) -> bool:
        approach = self.geometry.approach_length
        path_len = vehicle.path_length
        return (
            vehicle.front + vehicle.info.buffer >= approach
            and vehicle.rear - vehicle.info.buffer <= approach + path_len
        )

    def _safety_monitor(self):
        while True:
            active = [
                v for v in self.vehicles if not v.done and self._in_box(v)
            ]
            for a, b in itertools.combinations(active, 2):
                rect_a, rect_b = self.pose_of(a), self.pose_of(b)
                gap = math.hypot(rect_a.cx - rect_b.cx, rect_a.cy - rect_b.cy)
                self.min_separation = min(self.min_separation, gap)
                pair = (min(a.info.vehicle_id, b.info.vehicle_id),
                        max(a.info.vehicle_id, b.info.vehicle_id))
                if rects_overlap(rect_a, rect_b):
                    # Episode semantics: a sustained overlap counts
                    # once at onset; once the bodies separate the pair
                    # is cleared, so a distinct later contact counts
                    # as a new episode.
                    if pair not in self._touching_pairs:
                        self._touching_pairs.add(pair)
                        self.collisions += 1
                        self.collision_episodes.append((self.env.now, pair))
                        if self.obs is not None and self.obs.enabled:
                            self.obs.emit(
                                "safety.collision", self.env.now, "world",
                                vehicle_a=pair[0], vehicle_b=pair[1],
                            )
                elif pair in self._touching_pairs:
                    self._touching_pairs.discard(pair)
                elif a.info.movement.entry != b.info.movement.entry and rects_overlap(
                    rect_a.inflated_longitudinal(a.info.buffer),
                    rect_b.inflated_longitudinal(b.info.buffer),
                ):
                    # Buffered-footprint contact between *cross-traffic*
                    # vehicles: the planned-safety margin was consumed.
                    # Same-lane pairs queueing at the line are expected
                    # to sit closer than two buffers and are excluded.
                    self.buffer_violations += 1
            for check in self.safety_checks:
                check(self.env.now)
            yield self.env.timeout(self.config.safety_dt)

    def _im_watchdog(self):
        """1 Hz sweep invalidating reservations of quiet vehicles.

        Lives in the world (whose :meth:`run` steps the DES in bounded
        increments) rather than inside the IM: an infinite periodic
        process in :class:`~repro.core.base.BaseIM` would keep the
        event queue non-empty and hang unit tests that ``env.run()``
        with no ``until``.
        """
        while True:
            yield self.env.timeout(1.0)
            self.im.invalidate_quiet(self.env.now)

    # -- execution ---------------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return bool(self.vehicles) and all(v.done for v in self.vehicles) and len(
            self.vehicles
        ) == len(self.arrivals)

    def run(self) -> SimResult:
        """Run to completion (all vehicles despawned) and collect results."""
        step = 1.0
        with self.perf.timer("sim_run"):
            while not self.all_done and self.env.now < self.config.max_sim_time:
                self.env.run(until=self.env.now + step)
        return self.result()

    def _machine_counters(self, perf: PerfCounters) -> None:
        """Harvest the ROADMAP's per-machine protocol counters.

        All values derive from deterministic machine state (sim-time
        and message accounting, never wall clock), so jobs=1 and
        jobs=2 merges of the same seeds agree exactly.
        """
        loops = [v.proto for v in self.vehicles]
        perf.incr("machine.request_loop.exchanges",
                  sum(l.exchanges for l in loops))
        perf.incr("machine.request_loop.timeouts",
                  sum(l.timeouts for l in loops))
        perf.incr("machine.request_loop.discarded",
                  sum(l.discarded for l in loops))
        syncs = [v.sync for v in self.vehicles]
        perf.incr("machine.timesync.sessions", sum(s.sessions for s in syncs))
        perf.incr("machine.timesync.samples", sum(s.samples for s in syncs))
        perf.incr("machine.timesync.resamples", sum(s.resamples for s in syncs))
        monitors = [v.monitor for v in self.vehicles]
        perf.incr("machine.degradation.timeouts",
                  sum(m.timeouts_total for m in monitors))
        perf.incr("machine.degradation.contacts",
                  sum(m.contacts for m in monitors))
        perf.incr("machine.degradation.entries",
                  sum(m.degraded_entries for m in monitors))
        perf.incr("machine.degradation.degraded_s",
                  sum(m.degraded_time for m in monitors))
        guard = self.im.guard
        perf.incr("machine.sequence_guard.admitted", guard.admitted)
        perf.incr("machine.sequence_guard.drops", guard.drops)
        perf.incr("machine.sequence_guard.stale_cancels", guard.stale_cancels)
        perf.incr("machine.timesync_responder.responses",
                  self.im.sync_responder.responses)

    def _perf_snapshot(self) -> Dict[str, float]:
        """Timers from this world + counters harvested from subsystems."""
        perf = PerfCounters(times=self.perf.times)
        perf.merge(self.im.perf)
        perf.incr("des_events", self.env.events_processed)
        self._machine_counters(perf)
        reservations = getattr(self.im, "reservations", None)
        if reservations is not None:  # AIM only
            grid = reservations.grid
            perf.incr("tile_cells_tested", grid.cells_tested)
            perf.incr("tile_cache_hits", grid.cache_hits)
            perf.incr("tile_cache_misses", grid.cache_misses)
            perf.incr("tile_cells_purged", reservations.purged_total)
            perf.incr("tile_cells_simulated", self.im.cells_simulated)
        snapshot = perf.snapshot()
        if reservations is not None:
            snapshot["tile_cache_hit_rate"] = perf.hit_rate(
                "tile_cache_hits", "tile_cache_misses"
            )
        return snapshot

    def result(self) -> SimResult:
        """Snapshot the metrics of the current state."""
        stats = self.channel.stats
        return SimResult(
            policy=self.policy,
            records=[v.record for v in self.vehicles],
            sim_duration=self.env.now,
            compute_time=self.im.compute.total_time,
            compute_requests=self.im.compute.requests,
            messages_sent=stats.sent,
            bytes_sent=stats.bytes_sent,
            messages_by_type=dict(stats.by_type),
            rejects=self.im.stats.rejects,
            collisions=self.collisions,
            buffer_violations=self.buffer_violations,
            min_separation=self.min_separation,
            worst_service_time=self.im.stats.worst_service_time,
            duplicates_dropped=stats.duplicates_dropped,
            losses_by_reason={k: int(v) for k, v in sorted(stats.by_reason.items())},
            fault_injections=self.faults.snapshot() if self.faults else {},
            reservation_invalidations=self.im.stats.invalidations,
            stale_requests_dropped=self.im.stats.stale_requests_dropped,
            perf=self._perf_snapshot(),
            obs=(
                span_stats(build_spans(self.obs))
                if self.obs is not None
                else {}
            ),
        )


def run_scenario(
    policy: str,
    arrivals: Sequence[Arrival],
    config: Optional[WorldConfig] = None,
    conflicts: Optional[ConflictTable] = None,
    geometry: Optional[IntersectionGeometry] = None,
    seed: Optional[int] = None,
    obs: Optional[EventLog] = None,
) -> SimResult:
    """One-call wrapper: build a :class:`World`, run it, return results."""
    world = World(
        policy,
        arrivals,
        geometry=geometry,
        conflicts=conflicts,
        config=config,
        seed=seed,
        obs=obs,
    )
    return world.run()
