"""Driving a simulated :class:`~repro.sim.world.World` over the wire.

The loopback-equivalence half of the serve mode: a stock single-node
world — vehicles, clocks, plants, protocol machines, all unchanged —
whose transport is the socket fabric instead of the in-process
channel.  Vehicle traffic addressed to the IM crosses a real link to a
remote :class:`~repro.serve.server.ImServer`; everything else behaves
exactly as in the DES.

The world still constructs its *local* IM (the node runtime always
does); :class:`ClientSocketTransport` force-routes the IM address over
the link, so the local IM is attached but starved — a deliberate
sleight of hand that keeps the simulation side byte-for-byte
unmodified, as the Transport seam promises.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from repro.network.messages import Ack
from repro.network.wire import WireError, decode_message, encode_message
from repro.serve.link import StreamLink
from repro.serve.realtime import RealtimeBridge
from repro.serve.transport import SocketTransport

__all__ = [
    "ClientSocketTransport",
    "link_transport_factory",
    "run_world_over_link",
    "run_world_over_server",
]


class ClientSocketTransport(SocketTransport):
    """Vehicle-side fabric: IM-bound traffic goes over the link.

    The IM address is routed *before* the local radio lookup — the
    world's own (starved) IM stays attached, the remote one serves.
    """

    def __init__(self, env, link, im_address: str = "IM", metrics=None,
                 on_deliver=None):
        super().__init__(env, metrics=metrics, on_deliver=on_deliver)
        self.link = link
        self.im_address = im_address

    def transmit(self, message) -> None:
        if message.receiver == self.im_address:
            self.stats.record_send(message)
            if self.metrics is not None:
                self._m_sent.inc(1.0, self.env.now)
            try:
                self.link.write_frame(encode_message(message))
            except WireError:  # pragma: no cover - outbound is trusted
                self._drop_counted(message, "wire_error")
                return
            self.stats.record_delivery()
            if self.metrics is not None:
                self._m_delivered.inc(1.0, self.env.now)
            return
        super().transmit(message)


def link_transport_factory(
    link,
    im_address: str = "IM",
    holder: Optional[List[ClientSocketTransport]] = None,
    on_deliver=None,
) -> Callable:
    """A ``transport_factory`` for :class:`~repro.sim.world.World`.

    Matches the :func:`~repro.network.transport.default_transport`
    signature; the channel-only knobs (delay model, loss, faults RNG)
    are ignored — latency and loss are whatever the link does.
    """

    def factory(env, delay_model=None, loss_probability=0.0, rng=None,
                faults=None, obs=None, metrics=None):
        transport = ClientSocketTransport(
            env, link, im_address=im_address, metrics=metrics,
            on_deliver=on_deliver,
        )
        if holder is not None:
            holder.append(transport)
        return transport

    return factory


async def _pump(link, transport, bridge) -> None:
    """Inbound side: decode frames, ack them, deliver into the world."""
    while True:
        try:
            payload = await link.read_frame()
        except WireError:
            break
        if payload is None:
            break
        try:
            message = decode_message(payload)
        except WireError:
            continue
        if isinstance(message, Ack):
            continue
        ack = Ack(
            sender=message.receiver,
            receiver=message.sender,
            acked_seq=message.seq,
        )
        ack.corr = message.corr
        try:
            link.write_frame(encode_message(ack))
        except WireError:  # pragma: no cover - outbound is trusted
            pass
        bridge.sync()
        transport.deliver_local(message)
        bridge.kick()


async def run_world_over_link(world, link, time_scale: float = 1.0):
    """Pace ``world`` against wall time until every vehicle despawns.

    The caller builds the world with
    ``transport_factory=link_transport_factory(link, ...)``; this
    drives its DES through a :class:`RealtimeBridge` with the link
    pump attached, then returns ``world.result()``.
    """
    bridge = RealtimeBridge(world.env, time_scale=time_scale, idle_tick=0.05)
    bridge.start()
    pump_task = asyncio.get_running_loop().create_task(
        _pump(link, world.channel, bridge)
    )
    try:
        await bridge.run(
            until=lambda: world.all_done
            or world.env.now >= world.config.max_sim_time
        )
    finally:
        bridge.stop()
        pump_task.cancel()
        try:
            await pump_task
        except (asyncio.CancelledError, Exception):
            pass
    return world.result()


def run_world_over_server(
    policy: str,
    arrivals,
    host: str,
    port: int,
    config=None,
    seed=None,
    time_scale: float = 1.0,
    metrics=None,
    on_deliver=None,
):
    """Blocking wrapper: connect, build the world, run it over TCP."""
    from repro.sim.world import World

    async def _run():
        reader, writer = await asyncio.open_connection(host, port)
        link = StreamLink(reader, writer, peer=f"{host}:{port}")
        world = World(
            policy,
            arrivals,
            config=config,
            seed=seed,
            metrics=metrics,
            transport_factory=link_transport_factory(
                link, on_deliver=on_deliver
            ),
        )
        try:
            return await run_world_over_link(world, link, time_scale)
        finally:
            link.close()
            await link.wait_closed()

    return asyncio.run(_run())
