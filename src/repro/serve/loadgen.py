"""Open-loop load generator and the ``bench serve`` sweep.

:func:`run_load` fires crossing transactions at a fixed rate against a
serve-mode IM — open loop (send times follow the schedule, not the
responses), the standard way to measure a server's sustainable
throughput and its behaviour *past* saturation.  One transaction is
the vehicle lifecycle in miniature: ``CrossingRequest`` -> grant /
reject / timeout -> ``ExitNotification`` (so the scheduler's state is
released and the IM doesn't saturate on ghost reservations).

:func:`bench_serve` self-hosts a TCP server and sweeps a list of
rates, producing the ``BENCH_serve.json`` payload the bench gate
tracks: per-rate TPS / p50 / p99 wall RTD / reject + timeout counts,
plus the overload-degradation evidence (rejects in
``NetworkStats.by_reason``, bounded backlog, server alive after the
sweep).
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.geometry.layout import Approach, Movement, Turn
from repro.network.messages import AimReject, CrossingRequest, ExitNotification
from repro.serve.client import ServeClient
from repro.serve.server import ImServer, ServeConfig
from repro.vehicle.spec import VehicleInfo, VehicleSpec

__all__ = ["LoadReport", "bench_serve", "run_load"]

#: Sender-address pool size: bounds the server's route table, sequence
#: guard and scheduler state no matter how long the run (addresses are
#: recycled; each transaction exits before its address is reused).
_ADDRESS_POOL = 4096

_APPROACHES = (Approach.NORTH, Approach.EAST, Approach.SOUTH, Approach.WEST)


@dataclass
class LoadReport:
    """Outcome of one fixed-rate run."""

    rate: float
    duration_s: float
    sent: int = 0
    completed: int = 0
    rejects: int = 0
    timeouts: int = 0
    #: Wall-clock request->reply round trips, seconds.
    rtds_wall: List[float] = field(default_factory=list)

    def _quantile(self, q: float) -> float:
        if not self.rtds_wall:
            return 0.0
        ordered = sorted(self.rtds_wall)
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    @property
    def tps(self) -> float:
        """Completed transactions per wall second."""
        return self.completed / self.duration_s if self.duration_s else 0.0

    def to_dict(self) -> dict:
        answered = max(self.sent, 1)
        return {
            "rate": self.rate,
            "sent": self.sent,
            "completed": self.completed,
            "rejects": self.rejects,
            "timeouts": self.timeouts,
            "tps": round(self.tps, 3),
            "reject_rate": round(self.rejects / answered, 4),
            "timeout_rate": round(self.timeouts / answered, 4),
            "rtd_p50_wall_s": round(self._quantile(0.50), 6),
            "rtd_p99_wall_s": round(self._quantile(0.99), 6),
            "rtd_max_wall_s": round(
                max(self.rtds_wall) if self.rtds_wall else 0.0, 6
            ),
        }


async def _transaction(
    client: ServeClient,
    index: int,
    im_address: str,
    report: LoadReport,
    request_timeout: float,
) -> None:
    loop = asyncio.get_running_loop()
    vehicle_id = index % _ADDRESS_POOL
    sender = f"V{vehicle_id}"
    request = CrossingRequest(
        sender=sender,
        receiver=im_address,
        tt=client.local_time(),
        dt=6.0,
        vc=2.0,
        vehicle_info=VehicleInfo(
            vehicle_id=vehicle_id,
            spec=VehicleSpec(),
            movement=Movement(
                entry=_APPROACHES[index % 4], turn=Turn.STRAIGHT
            ),
        ),
    )
    started = loop.time()
    reply = await client.request(request, timeout=request_timeout)
    if reply is None:
        report.timeouts += 1
        return
    report.rtds_wall.append(loop.time() - started)
    if isinstance(reply, AimReject):
        report.rejects += 1
        return
    report.completed += 1
    # Release the slot so sustained load measures steady state, not a
    # scheduler filling up with ghosts.
    exit_note = ExitNotification(
        sender=sender, receiver=im_address, exit_time=client.local_time()
    )
    await client.send(exit_note)


async def run_load(
    client: ServeClient,
    rate: float,
    duration_s: float,
    im_address: str = "IM",
    request_timeout: float = 2.0,
    sync_first: bool = True,
) -> LoadReport:
    """Open-loop fixed-rate load against an already-connected client.

    ``rate`` is transactions per *wall* second; ``duration_s`` is wall
    seconds of sending (the tail of outstanding requests is awaited).
    """
    if rate <= 0 or duration_s <= 0:
        raise ValueError("rate and duration_s must be positive")
    if sync_first:
        await client.sync_clock(im_address)
    report = LoadReport(rate=rate, duration_s=duration_s)
    loop = asyncio.get_running_loop()
    start = loop.time()
    total = max(int(rate * duration_s), 1)
    tasks = []
    for index in range(total):
        # Absolute schedule: no drift accumulation from per-send jitter.
        target = start + index / rate
        delay = target - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        report.sent += 1
        tasks.append(
            loop.create_task(
                _transaction(client, index, im_address, report, request_timeout)
            )
        )
    await asyncio.gather(*tasks)
    return report


def bench_serve(
    rates: Sequence[float] = (40.0, 120.0, 800.0),
    duration_s: float = 2.0,
    policy: str = "crossroads",
    time_scale: float = 10.0,
    max_queue: int = 64,
    safety_factor: float = 2.0,
    host: str = "127.0.0.1",
    metrics_registry=None,
) -> dict:
    """Self-hosted TCP rate sweep; returns the BENCH_serve payload."""

    async def _sweep() -> dict:
        config = ServeConfig(
            policy=policy,
            host=host,
            port=0,
            time_scale=time_scale,
            max_queue=max_queue,
            safety_factor=safety_factor,
        )
        server = ImServer(config, metrics=metrics_registry)
        await server.start()
        sweep = {}
        peak_backlog = 0
        try:
            for rate in rates:
                client = await ServeClient.connect(
                    host, server.port, time_scale=time_scale
                )
                try:
                    report = await run_load(client, rate, duration_s)
                finally:
                    await client.close()
                sweep[f"rate_{rate:g}"] = report.to_dict()
                peak_backlog = max(peak_backlog, server.im.stats.peak_queue)
            # Post-sweep liveness probe: the server must still answer
            # after being driven past saturation.
            probe = await ServeClient.connect(
                host, server.port, time_scale=time_scale
            )
            try:
                alive_report = await run_load(
                    probe, rate=20.0, duration_s=0.25
                )
            finally:
                await probe.close()
            stats = server.transport.stats
            payload = {
                "workload": {
                    "policy": policy,
                    "rates": [float(r) for r in rates],
                    "duration_s": duration_s,
                    "time_scale": time_scale,
                    "max_queue": max_queue,
                    "safety_factor": safety_factor,
                },
                "sweep": sweep,
                "overload": {
                    "rejects": int(stats.by_reason.get("overload", 0)),
                    "peak_backlog": int(peak_backlog),
                    "alive_after_overload": alive_report.completed > 0,
                },
                "server": {
                    "requests_served": int(server.im.stats.crossing_requests),
                    "wc_rtd_estimate_s": round(server.wc_rtd_estimate(), 6),
                    "worst_service_s": round(
                        server.im.stats.worst_service_time, 6
                    ),
                    "rtd_samples": int(server.estimator.count),
                },
                "cpus": os.cpu_count(),
            }
        finally:
            await server.shutdown()
        return payload

    return asyncio.run(_sweep())
