"""IM-as-a-service: the real-time streaming execution mode (L8).

The unchanged IM core behind an asyncio server speaking the
:mod:`repro.network.wire` framing of the stock message dataclasses —
over TCP or an in-process queue pipe — with WC-RTD *measured* online
from link acks instead of configured, backpressure by
reject-with-backoff, and the :mod:`repro.obs.metrics` snapshot on an
HTTP ``/metrics`` scrape endpoint.  See DESIGN.md ("Serve layer") and
README ("Serving").
"""

from repro.serve.client import ServeClient
from repro.serve.estimator import RtdEstimator
from repro.serve.link import QueueLink, StreamLink, queue_pipe
from repro.serve.loadgen import LoadReport, bench_serve, run_load
from repro.serve.realtime import RealtimeBridge
from repro.serve.server import ImServer, ServeConfig
from repro.serve.transport import SocketTransport
from repro.serve.worldclient import (
    ClientSocketTransport,
    link_transport_factory,
    run_world_over_link,
    run_world_over_server,
)

__all__ = [
    "ClientSocketTransport",
    "ImServer",
    "LoadReport",
    "QueueLink",
    "RealtimeBridge",
    "RtdEstimator",
    "ServeClient",
    "ServeConfig",
    "SocketTransport",
    "StreamLink",
    "bench_serve",
    "link_transport_factory",
    "queue_pipe",
    "run_load",
    "run_world_over_link",
    "run_world_over_server",
]
