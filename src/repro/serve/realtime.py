"""Wall-clock pacing of the DES kernel for the serve mode.

The IM core is a set of DES processes (receive loop, compute worker,
watchdog).  In serve mode those processes must advance against *wall*
time: a request arriving over the socket is delivered at the simulated
instant corresponding to "now", and the compute model's service time
elapses as real milliseconds before the reply leaves.

:class:`RealtimeBridge` maps ``loop.time()`` to ``env.now`` through
``time_scale`` (simulated seconds per wall second — 10 means the sim
runs 10x faster than reality, letting load tests compress minutes of
traffic into seconds) and drives the kernel from a single asyncio
task: sleep until the next scheduled event is due, run every event
that is, repeat.  ``kick()`` wakes the driver early when new work was
injected from a socket handler.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

__all__ = ["RealtimeBridge"]


class RealtimeBridge:
    """Paces a DES :class:`~repro.des.Environment` against wall time."""

    def __init__(self, env, time_scale: float = 1.0, idle_tick: float = 0.2):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.env = env
        self.time_scale = time_scale
        #: Longest wall sleep while the event queue is empty (bounds
        #: shutdown latency; any kick cuts it short anyway).
        self.idle_tick = idle_tick
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._origin = 0.0
        self._wakeup: Optional[asyncio.Event] = None
        self._stopped = False

    def start(self) -> None:
        """Bind to the running loop; wall 'now' becomes ``env.now``."""
        self._loop = asyncio.get_running_loop()
        self._origin = self._loop.time() - self.env.now / self.time_scale
        self._wakeup = asyncio.Event()
        self._stopped = False

    @property
    def sim_now(self) -> float:
        """The simulated time corresponding to this wall instant."""
        assert self._loop is not None, "bridge not started"
        return (self._loop.time() - self._origin) * self.time_scale

    def wall(self) -> float:
        """The loop's monotonic wall clock (seconds)."""
        assert self._loop is not None, "bridge not started"
        return self._loop.time()

    def sync(self) -> None:
        """Run every due event and advance ``env.now`` to wall-now."""
        target = self.sim_now
        if target > self.env.now:
            self.env.run(until=target)

    def kick(self) -> None:
        """Wake the driver: new events were injected."""
        if self._wakeup is not None:
            self._wakeup.set()

    def stop(self) -> None:
        self._stopped = True
        self.kick()

    async def run(self, until: Optional[Callable[[], bool]] = None) -> None:
        """Drive the kernel until :meth:`stop` (or ``until()`` is true).

        One iteration: catch the kernel up to wall time, then sleep
        until the next scheduled event is due (capped at
        ``idle_tick``), waking early on :meth:`kick`.
        """
        assert self._wakeup is not None, "bridge not started"
        while not self._stopped:
            self.sync()
            if until is not None and until():
                return
            horizon = self.env.peek()
            if horizon == float("inf"):
                delay = self.idle_tick
            else:
                delay = min(
                    max((horizon - self.sim_now) / self.time_scale, 0.0),
                    self.idle_tick,
                )
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass
