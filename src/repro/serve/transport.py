"""The socket fabric as a :class:`~repro.network.transport.Transport`.

The server hosts the unchanged IM core on a DES environment; the
vehicles live on the far side of real byte streams.  To the IM nothing
changed: ``make_im`` attaches a :class:`~repro.network.channel.Radio`
to this transport exactly as it would to a :class:`Channel`, and the
IM's replies go out through ``radio.send`` -> :meth:`transmit`.

Routing is two-tier:

* a **local radio** (the IM, or — on the client side — the vehicles)
  receives by inbox delivery, synchronously at the current ``env.now``;
* a **route** (a per-connection callable registered by the server's
  connection handler, or the client's uplink) carries everything else
  out over the wire.

Messages addressed to neither are dropped and attributed to
``by_reason["no_route"]`` — the same detach semantics as the channel
(the :class:`~repro.network.transport.Transport` contract).  Unlike
the channel there is no delay model and no loss: latency and loss are
whatever the real network does.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.network.channel import NetworkStats, Radio
from repro.network.messages import Message
from repro.network.transport import Transport

__all__ = ["SocketTransport"]


class SocketTransport(Transport):
    """Transport whose far side is a set of byte-stream routes.

    Parameters
    ----------
    env:
        The DES environment local protocol machines run on.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; mirrors the
        channel's ``net.sent`` / ``net.delivered`` / ``net.dropped``
        counters when enabled.
    on_deliver:
        Optional hook called with every locally delivered message
        (after inbox insertion) — the serve loopback tests use it to
        record decision sequences without touching the protocol path.
    """

    def __init__(self, env, metrics=None, on_deliver=None):
        self.env = env
        self.stats = NetworkStats()
        self.metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        self.on_deliver: Optional[Callable[[Message], None]] = on_deliver
        if self.metrics is not None:
            self._m_sent = self.metrics.counter("net.sent")
            self._m_delivered = self.metrics.counter("net.delivered")
            self._m_dropped: Dict[str, object] = {}
        self._radios: Dict[str, Radio] = {}
        self._routes: Dict[str, Callable[[Message], None]] = {}

    # -- Transport surface ---------------------------------------------------
    def attach(self, address: str) -> Radio:
        """Create and register a local radio under ``address``."""
        if address in self._radios:
            raise ValueError(f"address {address!r} already attached")
        radio = Radio(self, address)
        self._radios[address] = radio
        return radio

    def detach(self, address: str) -> None:
        """Remove a local endpoint; later traffic to it becomes
        ``by_reason["no_route"]`` drops (never raises)."""
        self._radios.pop(address, None)

    def transmit(self, message: Message) -> None:
        """Deliver locally, or ship over the peer's route, or drop."""
        self.stats.record_send(message)
        if self.metrics is not None:
            self._m_sent.inc(1.0, self.env.now)
        radio = self._radios.get(message.receiver)
        if radio is not None:
            self._deliver_to(radio, message)
            return
        route = self._routes.get(message.receiver)
        if route is not None:
            route(message)
            self.stats.record_delivery()
            if self.metrics is not None:
                self._m_delivered.inc(1.0, self.env.now)
            return
        self._drop_counted(message, "no_route")

    # -- wire-side entry points ----------------------------------------------
    def register_route(
        self, address: str, send: Callable[[Message], None]
    ) -> None:
        """Bind ``address`` to a connection's outgoing-frame callable."""
        self._routes[address] = send

    def unregister_route(self, address: str) -> None:
        self._routes.pop(address, None)

    def routes(self) -> int:
        """Number of live wire routes (connection gauge)."""
        return len(self._routes)

    def deliver_local(self, message: Message) -> None:
        """Inject a message that arrived *off* the wire.

        Counts as a send+delivery on this medium (the remote half
        counted its own transmit on its side of the wire).
        """
        self.stats.record_send(message)
        if self.metrics is not None:
            self._m_sent.inc(1.0, self.env.now)
        radio = self._radios.get(message.receiver)
        if radio is None:
            self._drop_counted(message, "no_route")
            return
        self._deliver_to(radio, message)

    def drop(self, message: Message, reason: str) -> None:
        """Account an administratively dropped inbound message
        (overload shedding) without delivering it."""
        self.stats.record_send(message)
        if self.metrics is not None:
            self._m_sent.inc(1.0, self.env.now)
        self._drop_counted(message, reason)

    # -- internals -----------------------------------------------------------
    def _deliver_to(self, radio: Radio, message: Message) -> None:
        if radio.accept(message):
            self.stats.record_delivery()
            if self.metrics is not None:
                self._m_delivered.inc(1.0, self.env.now)
            if self.on_deliver is not None:
                self.on_deliver(message)
        else:
            self.stats.record_duplicate_dropped(message)
            self._emit_dropped_metric("duplicate")

    def _drop_counted(self, message: Message, reason: str) -> None:
        self.stats.record_loss(reason)
        self._emit_dropped_metric(reason)

    def _emit_dropped_metric(self, reason: str) -> None:
        if self.metrics is None:
            return
        counter = self._m_dropped.get(reason)
        if counter is None:
            counter = self._m_dropped.setdefault(
                reason,
                self.metrics.counter("net.dropped", labels={"reason": reason}),
            )
        counter.inc(1.0, self.env.now)
