"""Protocol client for the serve mode (load generator / tooling side).

:class:`ServeClient` is *not* a simulated vehicle: it is the thin
correlation layer a load generator (or an operator script) needs —
send a request dataclass, await the reply matched by ``in_reply_to``,
link-ack everything the server sends so the server's WC-RTD estimator
gets its samples, and NTP-sync a local clock against the server's IM
so request timestamps (``tt``) are meaningful.

One client multiplexes any number of sender addresses over one
connection (the server routes per sender, not per socket).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.network.messages import Ack, Message, SyncRequest, SyncResponse
from repro.network.wire import WireError, decode_message, encode_message
from repro.serve.link import StreamLink

__all__ = ["ServeClient"]


class ServeClient:
    """Request/response correlation over one serve-mode link."""

    def __init__(self, link, address: str = "client", time_scale: float = 1.0):
        self.link = link
        self.address = address
        self.time_scale = time_scale
        self._waiters: Dict[int, "asyncio.Future"] = {}
        #: Wall send times of un-acked outbound messages (link RTT).
        self._acks_pending: Dict[int, float] = {}
        #: Measured link round trips, wall seconds (send -> server ack).
        self.link_rtds: List[float] = []
        #: Replies that matched no outstanding request (sync responses,
        #: unsolicited commands).
        self.unmatched: "asyncio.Queue" = asyncio.Queue()
        #: Clock offset (simulated seconds) from the NTP exchange.
        self.offset = 0.0
        self._origin = 0.0
        self._reader: Optional[asyncio.Task] = None
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        address: str = "client",
        time_scale: float = 1.0,
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        link = StreamLink(reader, writer, peer=f"{host}:{port}")
        client = cls(link, address=address, time_scale=time_scale)
        await client.start()
        return client

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._origin = loop.time()
        self._reader = loop.create_task(self._read_loop())

    # -- clocks --------------------------------------------------------------
    def raw_time(self) -> float:
        """Local clock in simulated seconds (unsynced)."""
        return (
            asyncio.get_running_loop().time() - self._origin
        ) * self.time_scale

    def local_time(self) -> float:
        """NTP-corrected local clock (simulated seconds, server frame)."""
        return self.raw_time() + self.offset

    async def sync_clock(
        self, im_address: str = "IM", timeout: float = 5.0
    ) -> float:
        """One NTP exchange against the server's responder.

        Returns (and stores) the measured offset.  The
        :class:`~repro.network.messages.SyncResponse` carries no
        ``in_reply_to``; it is matched by the echoed ``t0`` off the
        unmatched-message queue.
        """
        t0 = self.raw_time()
        request = SyncRequest(
            sender=self.address, receiver=im_address, t0=t0
        )
        request.corr = request.seq
        await self.send(request)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError("clock sync timed out")
            message = await asyncio.wait_for(
                self.unmatched.get(), timeout=remaining
            )
            if isinstance(message, SyncResponse) and message.t0 == t0:
                t3 = self.raw_time()
                self.offset = ((message.t1 - t0) + (message.t2 - t3)) / 2.0
                return self.offset

    # -- traffic -------------------------------------------------------------
    async def send(self, message: Message) -> None:
        """Fire-and-forget (tracked for the link-RTT sample)."""
        self._acks_pending[message.seq] = asyncio.get_running_loop().time()
        self.link.write_frame(encode_message(message))
        await self.link.drain()

    async def request(
        self, message: Message, timeout: float = 5.0
    ) -> Optional[Message]:
        """Send and await the reply (``in_reply_to == message.seq``).

        Returns ``None`` on timeout or connection loss.  ``timeout``
        is wall seconds.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._waiters[message.seq] = future
        message.corr = message.seq
        await self.send(message)
        try:
            return await asyncio.wait_for(future, timeout=timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(message.seq, None)
            return None

    async def _read_loop(self) -> None:
        while True:
            try:
                payload = await self.link.read_frame()
            except WireError:
                break
            if payload is None:
                break
            try:
                message = decode_message(payload)
            except WireError:
                continue
            if isinstance(message, Ack):
                sent = self._acks_pending.pop(message.acked_seq, None)
                if sent is not None:
                    self.link_rtds.append(
                        asyncio.get_running_loop().time() - sent
                    )
                continue
            # Link-ack the reply so the server can sample its RTD.
            ack = Ack(
                sender=message.receiver,
                receiver=message.sender,
                acked_seq=message.seq,
            )
            ack.corr = message.corr
            try:
                self.link.write_frame(encode_message(ack))
            except WireError:  # pragma: no cover - outbound is trusted
                pass
            in_reply_to = getattr(message, "in_reply_to", 0)
            future = self._waiters.pop(in_reply_to, None)
            if future is not None and not future.done():
                future.set_result(message)
            else:
                self.unmatched.put_nowait(message)
        self._closed = True
        for future in self._waiters.values():
            if not future.done():
                future.set_result(None)
        self._waiters.clear()

    async def close(self) -> None:
        self.link.close()
        if self._reader is not None:
            try:
                await asyncio.wait_for(self._reader, timeout=1.0)
            except asyncio.TimeoutError:  # pragma: no cover
                self._reader.cancel()
        await self.link.wait_closed()
