"""The IM-as-a-service server.

:class:`ImServer` hosts the *unchanged* IM core — ``make_im`` builds
the same policy object (receive loop, capacity-1 compute worker,
:class:`~repro.protocol.SequenceGuard`,
:class:`~repro.protocol.TimeSyncResponder`) that every simulation
runs — on a DES environment paced against wall time by a
:class:`~repro.serve.realtime.RealtimeBridge`, behind a
:class:`~repro.serve.transport.SocketTransport`.  Clients connect over
TCP (or an in-process :func:`~repro.serve.link.queue_pipe` for tests)
speaking the :mod:`repro.network.wire` framing.

Serve-mode mechanics on top of the stock core:

* **Link acks.**  Every inbound message is acknowledged, and clients
  ack every reply; the server's measured reply->ack round trips feed
  the :class:`~repro.serve.estimator.RtdEstimator`, whose bound (plus
  the worst observed compute service time) *becomes* the operating
  ``IMConfig.wc_rtd`` — the paper's measured-WC-RTD loop closed over a
  real network.
* **Backpressure.**  The IM work queue is bounded: past
  ``max_queue`` pending requests, new crossing/AIM requests are shed
  with an immediate :class:`~repro.network.messages.AimReject` and an
  ``overload`` entry in ``NetworkStats.by_reason`` — overload degrades
  into rejects-with-backoff, never unbounded buffering.
* **Hardening.**  A malformed frame counts ``serve.wire_errors`` and
  (for garbage payloads) skips the frame or (for a corrupt length
  prefix) drops the connection — the serve loop never dies to a
  :class:`~repro.network.wire.WireError`.
* **Scrape endpoint.**  ``GET /metrics`` on the optional HTTP port
  serves the live :mod:`repro.obs.metrics` snapshot in Prometheus
  text format.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Set

from repro.des import Environment
from repro.geometry.layout import IntersectionGeometry
from repro.network.messages import Ack, AimReject, AimRequest, CrossingRequest
from repro.network.wire import WireError, decode_message, encode_message
from repro.obs.metrics import MetricsRegistry, RTD_BUCKETS
from repro.serve.estimator import RtdEstimator
from repro.serve.link import QueueLink, StreamLink, queue_pipe
from repro.serve.realtime import RealtimeBridge
from repro.serve.transport import SocketTransport

__all__ = ["ImServer", "ServeConfig"]

#: Outstanding un-acked replies tracked for RTD sampling (older
#: entries are evicted; an ack for an evicted seq is simply ignored).
_RTD_TRACK_CAP = 4096


@dataclass
class ServeConfig:
    """Knobs of one serve-mode IM instance."""

    policy: str = "crossroads"
    host: str = "127.0.0.1"
    #: TCP port (0 -> ephemeral; the bound port lands on ``ImServer.port``).
    port: int = 0
    #: Optional HTTP scrape port (None -> no HTTP endpoint).
    http_port: Optional[int] = None
    #: Simulated seconds per wall second (10 -> the IM core runs 10x
    #: faster than reality; compresses load tests).
    time_scale: float = 1.0
    #: Work-queue bound; crossing/AIM requests beyond it are shed with
    #: an ``AimReject`` (reject-with-backoff backpressure).
    max_queue: int = 64
    #: Gauge-sampling period, simulated seconds.
    sample_dt: float = 0.5
    #: Quiet-reservation watchdog period, simulated seconds.
    watchdog_dt: float = 1.0
    #: Metrics registry time-bucket width, simulated seconds.
    bucket_dt: float = 1.0
    #: RTD estimator parameters (see :class:`RtdEstimator`).
    estimator_alpha: float = 0.2
    estimator_window: int = 256
    safety_factor: float = 2.0
    #: Lower bound on the applied WC-RTD, simulated seconds.
    rtd_floor: float = 0.0
    #: Ack samples required before the estimate replaces the static
    #: ``IMConfig.wc_rtd``.
    min_samples: int = 5
    #: When False the estimator only reports (gauges/stats); the IM
    #: keeps its static configured WC-RTD.
    apply_estimate: bool = True
    #: Wall seconds granted to in-flight requests during shutdown.
    drain_grace: float = 2.0

    def __post_init__(self):
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must be non-negative")


class ImServer:
    """Asyncio host for one intersection manager."""

    def __init__(self, config: Optional[ServeConfig] = None, metrics=None):
        self.config = config if config is not None else ServeConfig()
        self.metrics = (
            metrics if metrics is not None
            else MetricsRegistry(bucket_dt=self.config.bucket_dt)
        )
        self.env = Environment()
        self.env.metrics = self.metrics.counter("des.events")
        self.transport = SocketTransport(self.env, metrics=self.metrics)
        self.bridge = RealtimeBridge(
            self.env, time_scale=self.config.time_scale
        )
        self.estimator = RtdEstimator(
            alpha=self.config.estimator_alpha,
            window=self.config.estimator_window,
            safety_factor=self.config.safety_factor,
            floor=self.config.rtd_floor,
        )
        # The unchanged IM core, attached to the socket fabric exactly
        # as it attaches to the in-process channel.
        from repro.core.policy import make_im

        self.im = make_im(
            self.config.policy,
            self.env,
            self.transport,
            IntersectionGeometry(),
        )
        self._h_rtd = self.metrics.histogram(
            "serve.rtd_seconds", buckets=RTD_BUCKETS
        )
        self._g_wc_rtd = self.metrics.gauge("serve.wc_rtd_estimate")
        self._g_ewma = self.metrics.gauge("serve.rtd_ewma")
        self._g_backlog = self.metrics.gauge("serve.backlog")
        self._g_connections = self.metrics.gauge("serve.connections")
        self._c_overload = self.metrics.counter("serve.overload")
        self._c_wire_errors = self.metrics.counter("serve.wire_errors")
        self._c_frames = self.metrics.counter("serve.frames")
        #: reply seq -> wall send time, awaiting the client's ack.
        self._reply_sent_at: "OrderedDict[int, float]" = OrderedDict()
        self._links: Set[object] = set()
        self._closing = False
        self._shutdown = None  # asyncio.Event, created on start()
        self._bridge_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._http: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None
        self.env.process(self._sampler())
        self.env.process(self._watchdog())

    # -- lifecycle -----------------------------------------------------------
    async def start(self, listen: bool = True) -> None:
        """Start the bridge (and the TCP/HTTP listeners when asked)."""
        self.bridge.start()
        self._shutdown = asyncio.Event()
        self._bridge_task = asyncio.get_running_loop().create_task(
            self.bridge.run()
        )
        if listen:
            self._server = await asyncio.start_server(
                self._handle_conn, self.config.host, self.config.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if self.config.http_port is not None:
            self._http = await asyncio.start_server(
                self._handle_http, self.config.host, self.config.http_port
            )
            self.http_port = self._http.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Signal-handler safe: ask :meth:`serve_forever` to return."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown`, then drain and stop."""
        assert self._shutdown is not None, "call start() first"
        await self._shutdown.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, stop the bridge."""
        self._closing = True
        for listener in (self._server, self._http):
            if listener is not None:
                listener.close()
        # Drain: the bridge keeps serving already-admitted work until
        # the IM queue empties or the grace period runs out.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace
        while (
            (len(self.im._work_queue) or self.im._pending)
            and loop.time() < deadline
        ):
            self.bridge.kick()
            await asyncio.sleep(0.02)
        await asyncio.sleep(0)  # let reply frames flush
        self.bridge.stop()
        if self._bridge_task is not None:
            try:
                await asyncio.wait_for(self._bridge_task, timeout=1.0)
            except asyncio.TimeoutError:  # pragma: no cover
                self._bridge_task.cancel()
        for link in list(self._links):
            link.close()
        for listener in (self._server, self._http):
            if listener is not None:
                try:
                    await listener.wait_closed()
                except (ConnectionError, RuntimeError):  # pragma: no cover
                    pass

    # -- estimator -----------------------------------------------------------
    def wc_rtd_estimate(self) -> float:
        """The operating WC-RTD: measured link bound + worst observed
        compute service time (simulated seconds)."""
        return self.estimator.wc_rtd() + self.im.stats.worst_service_time

    # -- DES-side processes --------------------------------------------------
    def _sampler(self):
        while True:
            yield self.env.timeout(self.config.sample_dt)
            now = self.env.now
            self._g_backlog.set(float(len(self.im._work_queue)), now)
            self._g_connections.set(float(self.transport.routes()), now)
            self._g_ewma.set(self.estimator.ewma, now)
            estimate = self.wc_rtd_estimate()
            self._g_wc_rtd.set(estimate, now)
            if (
                self.config.apply_estimate
                and self.estimator.count >= self.config.min_samples
            ):
                self.im.config.wc_rtd = max(estimate, 1e-3)

    def _watchdog(self):
        while True:
            yield self.env.timeout(self.config.watchdog_dt)
            self.im.invalidate_quiet(self.env.now)

    # -- connection handling -------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        link = StreamLink(reader, writer, peer=str(peer))
        await self._serve_link(link)

    def connect_local(
        self,
        to_server_delay=None,
        to_client_delay=None,
    ) -> QueueLink:
        """In-process connection: returns the client's end of a queue
        pipe whose server end is being served (tests / fault injection)."""
        client_link, server_link = queue_pipe(
            client_to_server_delay=to_server_delay,
            server_to_client_delay=to_client_delay,
        )
        asyncio.ensure_future(self._serve_link(server_link))
        return client_link

    async def _serve_link(self, link) -> None:
        self._links.add(link)
        addresses: Set[str] = set()

        def route_send(message) -> None:
            if not isinstance(message, Ack):
                self._note_reply_sent(message.seq)
            try:
                link.write_frame(encode_message(message))
            except WireError:  # pragma: no cover - outbound is trusted
                self._c_wire_errors.inc(1.0, self.env.now)

        try:
            while not self._closing:
                try:
                    payload = await link.read_frame()
                except WireError:
                    # Corrupt length prefix: the stream is unframeable.
                    self._c_wire_errors.inc(1.0, self.env.now)
                    break
                if payload is None:
                    break
                self._c_frames.inc(1.0, self.env.now)
                try:
                    message = decode_message(payload)
                except WireError:
                    # Garbage payload: count it, keep the connection.
                    self._c_wire_errors.inc(1.0, self.env.now)
                    continue
                self._handle_message(message, addresses, route_send)
                await link.drain()
        finally:
            for address in addresses:
                self.transport.unregister_route(address)
            self._links.discard(link)
            link.close()

    def _note_reply_sent(self, seq: int) -> None:
        self._reply_sent_at[seq] = self.bridge.wall()
        while len(self._reply_sent_at) > _RTD_TRACK_CAP:
            self._reply_sent_at.popitem(last=False)

    def _handle_message(self, message, addresses, route_send) -> None:
        self.bridge.sync()
        now = self.env.now
        if isinstance(message, Ack):
            sent = self._reply_sent_at.pop(message.acked_seq, None)
            if sent is not None:
                rtd = (self.bridge.wall() - sent) * self.config.time_scale
                self.estimator.observe(rtd)
                self._h_rtd.observe(rtd, now)
            return
        if message.sender not in addresses:
            self.transport.register_route(message.sender, route_send)
            addresses.add(message.sender)
        ack = Ack(
            sender=self.im.config.address,
            receiver=message.sender,
            acked_seq=message.seq,
        )
        ack.corr = message.corr
        self.transport.transmit(ack)
        if (
            isinstance(message, (CrossingRequest, AimRequest))
            and len(self.im._work_queue) >= self.config.max_queue
        ):
            # Backpressure: shed, account, and tell the sender to back
            # off (AIM vehicles handle the reject natively; everyone
            # else treats it as "try again later").
            self.transport.drop(message, "overload")
            self._c_overload.inc(1.0, now)
            reject = AimReject(
                sender=self.im.config.address,
                receiver=message.sender,
                in_reply_to=message.seq,
            )
            reject.corr = message.corr
            self.transport.transmit(reject)
            return
        self.transport.deliver_local(message)
        self.bridge.kick()

    # -- HTTP scrape endpoint ------------------------------------------------
    async def _handle_http(self, reader, writer) -> None:
        from repro.obs.prom import to_prometheus

        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
            while True:  # drain headers
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else ""
            if path == "/metrics":
                body = to_prometheus(self.metrics.snapshot())
                status, ctype = "200 OK", "text/plain; version=0.0.4"
            elif path in ("/healthz", "/health"):
                body, status, ctype = "ok\n", "200 OK", "text/plain"
            else:
                body, status, ctype = "not found\n", "404 Not Found", "text/plain"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover
                pass
