"""Byte-stream links the serve mode runs over.

Two interchangeable duplex links carry wire payloads (the frames of
:mod:`repro.network.wire`):

* :class:`StreamLink` — a real asyncio TCP stream (reader/writer pair);
* :class:`QueueLink` — an in-process asyncio queue pair with optional
  per-frame wall-clock delay injection, used by tests and the loopback
  equivalence pins (no sockets, no OS jitter).

Both expose the same surface: ``await read_frame()`` returning one wire
payload (or ``None`` once the peer closed), ``write_frame(payload)``,
``await drain()`` and ``close()``.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Tuple

from repro.network.wire import MAX_FRAME, WireError

__all__ = ["QueueLink", "StreamLink", "queue_pipe"]

_LEN = 4


class StreamLink:
    """Length-prefixed framing over an asyncio TCP stream."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: str = "?",
    ):
        self.reader = reader
        self.writer = writer
        self.peer = peer

    async def read_frame(self) -> Optional[bytes]:
        """Next wire payload; ``None`` on a clean or broken EOF.

        Raises :class:`~repro.network.wire.WireError` on an
        out-of-bounds length prefix (corrupt or hostile stream).
        """
        try:
            header = await self.reader.readexactly(_LEN)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        length = int.from_bytes(header, "big")
        if length == 0 or length > MAX_FRAME:
            raise WireError(f"frame length {length} out of bounds")
        try:
            return await self.reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None

    def write_frame(self, payload: bytes) -> None:
        self.writer.write(len(payload).to_bytes(_LEN, "big") + payload)

    async def drain(self) -> None:
        try:
            await self.writer.drain()
        except ConnectionError:
            pass

    def close(self) -> None:
        try:
            self.writer.close()
        except RuntimeError:  # loop already gone during shutdown
            pass

    async def wait_closed(self) -> None:
        try:
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


class QueueLink:
    """In-process duplex link over a pair of asyncio queues.

    ``delay`` (seconds, wall clock) is applied per outgoing frame via
    ``loop.call_later`` — the fault-injection hook the WC-RTD estimator
    test uses to create a known true delay bound without sockets.
    """

    def __init__(
        self,
        rx: "asyncio.Queue",
        tx: "asyncio.Queue",
        delay: Optional[Callable[[], float]] = None,
        peer: str = "queue",
    ):
        self.rx = rx
        self.tx = tx
        self.delay = delay
        self.peer = peer
        self._closed = False

    async def read_frame(self) -> Optional[bytes]:
        if self._closed:
            return None
        payload = await self.rx.get()
        if payload is None:
            self._closed = True
        return payload

    def write_frame(self, payload: bytes) -> None:
        if self._closed:
            return
        d = self.delay() if self.delay is not None else 0.0
        if d > 0.0:
            asyncio.get_running_loop().call_later(d, self.tx.put_nowait, payload)
        else:
            self.tx.put_nowait(payload)

    async def drain(self) -> None:
        return None

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.tx.put_nowait(None)

    async def wait_closed(self) -> None:
        return None


def queue_pipe(
    client_to_server_delay: Optional[Callable[[], float]] = None,
    server_to_client_delay: Optional[Callable[[], float]] = None,
) -> Tuple[QueueLink, QueueLink]:
    """A connected ``(client_link, server_link)`` pair of queue links."""
    a: "asyncio.Queue" = asyncio.Queue()
    b: "asyncio.Queue" = asyncio.Queue()
    client = QueueLink(rx=b, tx=a, delay=client_to_server_delay, peer="server")
    server = QueueLink(rx=a, tx=b, delay=server_to_client_delay, peer="client")
    return client, server
