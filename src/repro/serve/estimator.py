"""Online worst-case round-trip-delay estimation (the measured WC-RTD).

The paper's Crossroads IM tolerates a *measured* WC-RTD instead of an
assumed constant.  In serve mode every message from a client is
link-level acknowledged; the ack's round trip gives a live sample of
the network delay distribution.  :class:`RtdEstimator` folds those
samples into

* an EWMA (the smoothed typical RTD, exported as a gauge), and
* a sliding max window with a safety multiplier — the operating
  WC-RTD bound fed back into ``IMConfig.wc_rtd``.

Invariant (pinned by the fault-injected loopback test): with samples
drawn from a distribution whose true round trip never exceeds ``B``,

    ``window_max <= wc_rtd() <= safety_factor * B``

i.e. the estimate always covers the worst observation and never
exceeds the documented safety factor times the true bound.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

__all__ = ["RtdEstimator"]


class RtdEstimator:
    """EWMA + safety-multiplied max-window over RTD samples."""

    def __init__(
        self,
        alpha: float = 0.2,
        window: int = 256,
        safety_factor: float = 2.0,
        floor: float = 0.0,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if safety_factor < 1.0:
            raise ValueError("safety_factor must be >= 1")
        if floor < 0.0:
            raise ValueError("floor must be non-negative")
        self.alpha = alpha
        self.safety_factor = safety_factor
        self.floor = floor
        self._window: Deque[float] = deque(maxlen=window)
        #: Samples folded in so far.
        self.count = 0
        #: Exponentially weighted moving average of the RTD.
        self.ewma = 0.0
        #: Largest sample ever observed (not windowed).
        self.max_seen = 0.0

    def observe(self, rtd: float) -> None:
        """Fold in one round-trip sample (simulated seconds)."""
        if rtd < 0.0:
            return
        self._window.append(rtd)
        self.count += 1
        self.ewma = (
            rtd if self.count == 1
            else self.alpha * rtd + (1.0 - self.alpha) * self.ewma
        )
        if rtd > self.max_seen:
            self.max_seen = rtd

    @property
    def window_max(self) -> float:
        """Largest sample in the sliding window (0 before any sample)."""
        return max(self._window) if self._window else 0.0

    def wc_rtd(self) -> float:
        """The operating WC-RTD bound: ``max(floor, sf * window_max)``."""
        return max(self.floor, self.safety_factor * self.window_max)
