"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments without the ``wheel`` package (the legacy develop
path needs only setuptools).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Crossroads: time-sensitive autonomous intersection management "
        "(DAC 2017 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
)
