"""Quickstart: run one intersection scenario under Crossroads.

Spawns the paper's worst-case scale-model scenario (five vehicles
arriving almost simultaneously on all four approaches), runs the full
micro-simulation — NTP sync, request/response over the delayed radio
channel, time-sensitive execution — and prints per-vehicle outcomes.

Run with::

    python examples/quickstart.py [policy]

where ``policy`` is one of ``crossroads`` (default), ``vt-im``, ``aim``.
"""

import sys

from repro import run_scenario, scale_model_scenarios
from repro.analysis import render_table


def main() -> None:
    policy = sys.argv[1] if len(sys.argv) > 1 else "crossroads"
    scenario = scale_model_scenarios()[0]  # S1: the engineered worst case

    print(f"Scenario {scenario.name}: {scenario.n_vehicles} vehicles, "
          f"policy={policy}\n")
    result = run_scenario(policy, scenario.arrivals, seed=2017)

    headers = ["vehicle", "movement", "spawn (s)", "enter (s)", "exit (s)",
               "wait (s)", "requests", "stopped"]
    rows = [
        [
            f"V{r.vehicle_id}",
            r.movement_key,
            r.spawn_time,
            r.enter_time,
            r.exit_time,
            r.delay,
            r.requests_sent,
            r.came_to_stop,
        ]
        for r in sorted(result.records, key=lambda r: r.vehicle_id)
    ]
    print(render_table(headers, rows, precision=2))

    print()
    print(f"average wait time : {result.average_delay:.3f} s")
    print(f"throughput        : {result.throughput:.3f} vehicles per wait-second")
    print(f"messages on air   : {result.messages_sent}")
    print(f"IM compute time   : {result.compute_time:.3f} s")
    print(f"worst measured RTD: {result.worst_rtd * 1000:.0f} ms "
          f"(bound: 150 ms)")
    print(f"ground-truth safe : {result.safe} "
          f"(collisions={result.collisions}, "
          f"buffer contacts={result.buffer_violations})")


if __name__ == "__main__":
    main()
