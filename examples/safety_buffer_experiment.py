"""Ch 3: estimate the safety buffer the way the paper does.

1. Fig 3.1 — run the hold/ramp/hold tracking experiment 20 times on the
   noisy plant for the two worst-case profiles and take the outer bound
   of the longitudinal error ``Elong`` (paper: +-75 mm).
2. Ch 3.2 — synchronise a drifting clock over the simulated radio with
   NTP and bound the residual error (paper: 1 ms -> 3 mm at 3 m/s).
3. Ch 4  — add the worst-case-RTD term a plain VT-IM needs (0.45 m).

Run with::

    python examples/safety_buffer_experiment.py
"""

import numpy as np

from repro.analysis import render_table
from repro.des import Environment
from repro.network import Channel, SyncRequest, SyncResponse, testbed_delay_model
from repro.sensors import SafetyBufferCalculator, worst_case_elong
from repro.timesync import Clock, NtpClient, NtpSample


def measure_sync_error(seed: int = 3) -> float:
    """One NTP sync over the testbed radio; returns |residual error|."""
    env = Environment()
    channel = Channel(env, delay_model=testbed_delay_model(),
                      rng=np.random.default_rng(seed))
    im_radio = channel.attach("IM")
    v_radio = channel.attach("V")
    clock = Clock(offset=0.42, drift=20e-6, rng=np.random.default_rng(seed))
    client = NtpClient(clock)

    def server(env):
        while True:
            msg = yield im_radio.receive()
            now = env.now
            im_radio.send(SyncResponse(sender="IM", receiver="V",
                                       t0=msg.t0, t1=now, t2=now))

    def vehicle(env):
        for _ in range(4):
            t0 = clock.read(env.now)
            v_radio.send(SyncRequest(sender="V", receiver="IM", t0=t0))
            response = yield v_radio.receive()
            client.add_sample(NtpSample(t0=response.t0, t1=response.t1,
                                        t2=response.t2,
                                        t3=clock.read(env.now)))
        client.synchronize()

    env.process(server(env))
    done = env.process(vehicle(env))
    env.run(until=done)
    return abs(clock.error(env.now))


def main() -> None:
    rng = np.random.default_rng(2017)
    print("Fig 3.1 control/sensing error experiment (20 trials per profile)\n")
    bound, up, down = worst_case_elong(trials=20, rng=rng)
    rows = [
        ["0.1 -> 3.0 m/s", up.mean_elong * 1000, up.max_abs_elong * 1000],
        ["3.0 -> 0.1 m/s", down.mean_elong * 1000, down.max_abs_elong * 1000],
    ]
    print(render_table(["profile", "mean Elong (mm)", "max |Elong| (mm)"], rows, 1))
    print(f"\nmeasured Elong bound : {bound * 1000:+.1f} mm  (paper: +-75 mm)")

    sync_errors = [measure_sync_error(seed) for seed in range(10)]
    sync_error = max(sync_errors)
    print(f"NTP residual error   : {sync_error * 1000:.2f} ms "
          f"(paper: ~1 ms)")

    calc = SafetyBufferCalculator(elong=bound, sync_error=sync_error)
    b = calc.breakdown()
    print("\nBuffer breakdown (at 3 m/s):")
    print(render_table(
        ["component", "metres"],
        [
            ["sensing/control (Elong)", b.sensing],
            ["time sync", b.sync],
            ["base buffer (Crossroads, AIM)", b.base],
            ["worst-case RTD (VT-IM only)", b.rtd],
            ["total VT-IM buffer", b.total],
        ],
        precision=4,
    ))
    print("\n(paper: 78 mm base; VT-IM additionally carries the 0.45 m "
          "RTD term — the throughput cost Crossroads eliminates)")


if __name__ == "__main__":
    main()
