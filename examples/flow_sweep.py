"""Fig 7.2: throughput and overhead versus input flow rate.

Sweeps Poisson input flows over all three intersection managers with
identical traffic, printing the throughput series (the Fig 7.2 curves)
plus the computation/network overhead comparison of Ch 7.2.

The paper routes 160 cars per grid cell; that takes a few minutes of
wall time, so the defaults here are smaller.  Run the full grid with::

    python examples/flow_sweep.py 160 0.05 0.1 0.2 0.3 0.4 0.5 0.65 0.8 1.0 1.25
"""

import sys

from repro.analysis import flow_sweep_rows, overhead_rows, render_table, speedup_summary
from repro.sim.flowsweep import run_flow_sweep


def main() -> None:
    n_cars = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    flows = tuple(float(x) for x in sys.argv[2:]) or (0.1, 0.3, 0.6, 1.0)

    print(f"Sweeping {len(flows)} flow rates x 3 policies, {n_cars} cars each...\n")
    sweep = run_flow_sweep(flow_rates=flows, n_cars=n_cars, seed=7)

    headers, rows = flow_sweep_rows(sweep)
    print("Throughput (vehicles / total wait second), Fig 7.2 shape:\n")
    print(render_table(headers, rows, precision=4))

    print("\nIM compute time and network traffic (Ch 7.2):\n")
    headers, rows = overhead_rows(sweep)
    print(render_table(headers, rows, precision=1))

    print("\nCrossroads throughput advantage:")
    for baseline, stats in speedup_summary(sweep, subject="crossroads").items():
        print(f"  vs {baseline:10s}: worst-case {stats['worst_case']:.2f}X, "
              f"average {stats['average']:.2f}X")
    print("(paper: 1.62X worst / 1.36X avg vs VT-IM; "
          "1.28X worst / 1.15X avg vs AIM)")


if __name__ == "__main__":
    main()
