"""Trace and visualise one run: space-time diagrams per approach.

Runs the worst-case scenario under a chosen policy with a
:class:`~repro.sim.TraceRecorder` attached, then draws terminal
space-time diagrams (position left-to-right, the stop line as ``|``,
time running down) for each approach, plus speed sparklines — the
closest thing to watching the 1/10-scale cars queue and launch.

Run with::

    python examples/space_time_trace.py [policy]
"""

import sys

from repro.analysis import space_time_diagram, sparkline
from repro.sim import TraceRecorder, World
from repro.traffic import scale_model_scenarios


def main() -> None:
    policy = sys.argv[1] if len(sys.argv) > 1 else "crossroads"
    scenario = scale_model_scenarios()[0]
    world = World(policy, scenario.arrivals, seed=2017)
    recorder = TraceRecorder(world, period=0.25)
    result = world.run()

    print(f"{policy} on {scenario.name}: avg wait "
          f"{result.average_delay:.2f} s, safe={result.safe}\n")

    for lane, samples in sorted(recorder.by_lane().items()):
        print(f"approach {lane} (0 m -> 6 m, '|' = stop line):")
        print(space_time_diagram(samples, route_length=6.0, period=0.5))
        print()

    print("speed profiles (one sparkline per vehicle, spawn -> despawn):")
    for vid in recorder.vehicle_ids:
        speeds = [s.velocity for s in recorder.trajectory(vid)]
        movement = recorder.trajectory(vid)[0].movement_key
        print(f"  V{vid} {movement:12s} {sparkline(speeds)}")


if __name__ == "__main__":
    main()
