"""Multi-intersection corridors: a routed graph of IMs with hand-off.

Builds a three-node west->east corridor (``repro.grid``), runs the
same routed Poisson boundary workload under uniform Crossroads and
under a mixed-policy line-up (one node per policy), and prints the
per-node and corridor-level views:

* **per node** — vehicles served, mean excess wait, the IM's share of
  the shared wireless medium (``NetworkStats.by_endpoint``) and its
  compute time;
* **corridor** — end-to-end travel times, hand-off counts and how
  often a hand-off had to wait for car-following spacing on the
  destination lane.

Every vehicle keeps one radio address, one drifting clock and one
record lineage across all of its hops — hop k+1's IM sees the same
``V<id>`` endpoint hop k's IM did.

Run with::

    python examples/corridor_demo.py [n_nodes] [n_cars]

The equivalent CLI one-liner::

    python -m repro grid --nodes 3 --flow 0.15 --cars 20
"""

import sys

from repro.analysis import render_table
from repro.grid import GridPoissonTraffic, GridWorld, corridor_spec


def run_corridor(n_nodes: int, n_cars: int, policies, label: str) -> None:
    spec = corridor_spec(n_nodes, policies=policies)
    arrivals = GridPoissonTraffic(spec, flow_rate=0.15, seed=2017).generate(n_cars)
    result = GridWorld(spec, arrivals, seed=2017).run()

    print(f"== {label} ==")
    rows = [
        [name, node.policy, node.n_finished, node.average_delay,
         node.messages_sent, node.compute_time]
        for name, node in result.per_node.items()
    ]
    print(render_table(
        ["node", "policy", "served", "avg wait (s)", "messages",
         "IM compute (s)"],
        rows, precision=3,
    ))
    summary = result.summary()
    print(
        f"corridor: {result.n_completed}/{result.n_vehicles} trips complete | "
        f"avg corridor time {summary['avg_corridor_time_s']:.3f} s | "
        f"avg excess wait {summary['avg_delay_s']:.3f} s | "
        f"handoffs {result.handoffs} ({result.handoffs_delayed} delayed) | "
        f"safe {result.safe}\n"
    )


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    n_cars = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    run_corridor(n_nodes, n_cars, None, f"{n_nodes}-node corridor, uniform crossroads")
    mixed = (["crossroads", "vt-im", "aim"] * n_nodes)[:n_nodes]
    run_corridor(n_nodes, n_cars, mixed, f"{n_nodes}-node corridor, mixed policies "
                                         f"({', '.join(mixed)})")


if __name__ == "__main__":
    main()
