"""Extending the library: custom intersection-management policies.

Demonstrates the intended extension seam — subclass an IM, override
``handle_crossing``, and **register the policy** with
:mod:`repro.core.registry` — using a *metering* variant of Crossroads
that enforces a minimum time gap between grants (the signal-free
analogue of ramp metering).  Once registered, the policy name works
everywhere the built-ins do, without touching library internals::

    World("metered-crossroads", arrivals, seed=21).run()
    run_flow_sweep(policies=["crossroads", "metered-crossroads"], ...)
    python -m repro policies --plugin examples.custom_policy
    python -m repro run --policy metered-crossroads --flow 0.4

Because the registration names this module as its ``provider``, a
parallel-sweep worker process that never imported it resolves the
qualified name ``"examples.custom_policy:metered-crossroads"`` by
importing the module first (see
:func:`repro.core.registry.portable_name`).  Anything the IM builder
reads at call time (here ``GRANT_GAP``) should therefore be a frozen
module-level constant, so workers reproduce it on import.

The module also documents a negative result worth knowing: an
IM-side *priority* (emergency-vehicle) policy barely moves the needle
on a single-lane-per-approach intersection, because a vehicle stuck
mid-queue physically cannot jump its lane no matter what the scheduler
does — priority needs lane-level infrastructure, not just a smarter IM.

Run with::

    python examples/custom_policy.py
"""

from repro.analysis import render_table
from repro.core import CrossroadsIM
from repro.core.registry import policy
from repro.core.scheduler import ConflictScheduler
from repro.sim.world import World
from repro.traffic import PoissonTraffic
from repro.vehicle import CrossroadsVehicle

#: Minimum time between consecutive grants, seconds (module-level so a
#: worker process importing this module reproduces the same policy).
GRANT_GAP = 1.0


class MeteredCrossroadsIM(CrossroadsIM):
    """Crossroads with a minimum gap between consecutive grants.

    While the gap has not elapsed since the last grant, requests are
    answered with silence, so vehicles fall back on the stock
    safe-stop / retransmit behaviour — no vehicle-side changes needed.
    """

    def __init__(self, *args, min_grant_gap: float = 0.0, **kwargs):
        if min_grant_gap < 0:
            raise ValueError("min_grant_gap must be non-negative")
        self.min_grant_gap = min_grant_gap
        self._next_grant_at = 0.0
        super().__init__(*args, **kwargs)

    def handle_crossing(self, message):
        info = getattr(message, "vehicle_info", None)
        if info is not None and self.env.now < self._next_grant_at:
            # Metered out: silence; the vehicle retries.
            self.scheduler.note_request(
                info.vehicle_id, info.movement, self.env.now
            )
            return None, {"reservations": len(self.scheduler)}
        response, work = super().handle_crossing(message)
        if response is not None:
            self._next_grant_at = self.env.now + self.min_grant_gap
        return response, work


@policy(
    "metered-crossroads",
    vehicle_cls=CrossroadsVehicle,  # stock vehicle protocol, new IM
    extension=True,
    description="Crossroads with ramp-metered grant pacing (example plugin).",
    provider=__name__,
)
def build_metered_im(env, radio, geometry, conflicts=None, config=None,
                     compute=None, aim_config=None):
    """Metered Crossroads: min ``GRANT_GAP`` seconds between grants."""
    scheduler = ConflictScheduler(conflicts, v_min=config.v_min)
    return MeteredCrossroadsIM(
        env, radio, scheduler, config=config, compute=compute,
        min_grant_gap=GRANT_GAP,
    )


def main() -> None:
    global GRANT_GAP
    arrivals = PoissonTraffic(0.6, seed=21).generate(30)
    rows = []
    for gap in (0.0, 0.5, 1.0, 2.0):
        if gap == 0.0:
            result = World("crossroads", arrivals, seed=21).run()
            label = "stock crossroads"
        else:
            GRANT_GAP = gap
            result = World("metered-crossroads", arrivals, seed=21).run()
            label = f"metered (gap {gap:.1f} s)"
        rows.append([
            label, result.average_delay, result.throughput,
            result.stops, result.collisions,
        ])
    print(render_table(
        ["policy", "avg wait (s)", "throughput", "stops", "collisions"],
        rows, precision=3,
    ))
    print("\nMetering trades throughput for grant pacing; safety is"
          " independent of the policy knob (zero collisions throughout).")


if __name__ == "__main__":
    main()
