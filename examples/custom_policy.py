"""Extending the library: custom intersection-management policies.

Demonstrates the intended extension seams — subclass an IM, override
``handle_crossing``, swap it into a :class:`~repro.sim.World` — with a
*metering* variant of Crossroads that enforces a minimum time gap
between grants (the signal-free analogue of ramp metering).  The knob
has an unmistakable effect: larger gaps serialise the intersection and
wait times climb.

The module also documents a negative result worth knowing: an
IM-side *priority* (emergency-vehicle) policy barely moves the needle
on a single-lane-per-approach intersection, because a vehicle stuck
mid-queue physically cannot jump its lane no matter what the scheduler
does — priority needs lane-level infrastructure, not just a smarter IM.

Run with::

    python examples/custom_policy.py
"""

from repro.analysis import render_table
from repro.core import CrossroadsIM
from repro.core.scheduler import ConflictScheduler
from repro.sim.world import World
from repro.traffic import PoissonTraffic


class MeteredCrossroadsIM(CrossroadsIM):
    """Crossroads with a minimum gap between consecutive grants.

    While the gap has not elapsed since the last grant, requests are
    answered with silence, so vehicles fall back on the stock
    safe-stop / retransmit behaviour — no vehicle-side changes needed.
    """

    def __init__(self, *args, min_grant_gap: float = 0.0, **kwargs):
        if min_grant_gap < 0:
            raise ValueError("min_grant_gap must be non-negative")
        self.min_grant_gap = min_grant_gap
        self._next_grant_at = 0.0
        super().__init__(*args, **kwargs)

    def handle_crossing(self, message):
        info = getattr(message, "vehicle_info", None)
        if info is not None and self.env.now < self._next_grant_at:
            # Metered out: silence; the vehicle retries.
            self.scheduler.note_request(
                info.vehicle_id, info.movement, self.env.now
            )
            return None, {"reservations": len(self.scheduler)}
        response, work = super().handle_crossing(message)
        if response is not None:
            self._next_grant_at = self.env.now + self.min_grant_gap
        return response, work


class MeteredWorld(World):
    """A world wired around the metering IM."""

    def __init__(self, arrivals, min_grant_gap: float, seed=None):
        super().__init__("crossroads", arrivals, seed=seed)
        # Swap the IM: detach the stock radio and rebuild on a fresh one.
        self.channel.detach(self.config.im.address)
        radio = self.channel.attach(self.config.im.address)
        scheduler = ConflictScheduler(self.conflicts, v_min=self.config.im.v_min)
        self.im = MeteredCrossroadsIM(
            self.env, radio, scheduler,
            config=self.config.im, min_grant_gap=min_grant_gap,
        )


def main() -> None:
    arrivals = PoissonTraffic(0.6, seed=21).generate(30)
    rows = []
    for gap in (0.0, 0.5, 1.0, 2.0):
        if gap == 0.0:
            result = World("crossroads", arrivals, seed=21).run()
            label = "stock crossroads"
        else:
            result = MeteredWorld(arrivals, min_grant_gap=gap, seed=21).run()
            label = f"metered (gap {gap:.1f} s)"
        rows.append([
            label, result.average_delay, result.throughput,
            result.stops, result.collisions,
        ])
    print(render_table(
        ["policy", "avg wait (s)", "throughput", "stops", "collisions"],
        rows, precision=3,
    ))
    print("\nMetering trades throughput for grant pacing; safety is"
          " independent of the policy knob (zero collisions throughout).")


if __name__ == "__main__":
    main()
