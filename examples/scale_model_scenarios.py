"""Fig 7.1: average wait time over the ten scale-model scenarios.

Runs the paper's physical-testbed experiment in simulation: ten traffic
scenarios (S1 = simultaneous-arrival worst case ... S10 = sparse best
case), each repeated several times with different noise seeds, under
the plain VT-IM (RTD buffer required) and Crossroads (no RTD buffer).

Run with::

    python examples/scale_model_scenarios.py [repeats]
"""

import sys

import numpy as np

from repro import run_scenario, scale_model_scenarios
from repro.analysis import render_table


def main() -> None:
    repeats = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    scenarios = scale_model_scenarios()
    policies = ("vt-im", "crossroads")

    rows = []
    ratios = []
    for scenario in scenarios:
        means = {}
        for policy in policies:
            delays = [
                run_scenario(policy, scenario.arrivals, seed=100 + rep).average_delay
                for rep in range(repeats)
            ]
            means[policy] = float(np.mean(delays))
        ratio = means["vt-im"] / means["crossroads"] if means["crossroads"] else float("inf")
        ratios.append(ratio)
        rows.append([scenario.name, means["vt-im"], means["crossroads"], ratio])

    headers = ["scenario", "VT-IM wait (s)", "Crossroads wait (s)", "VT/CR"]
    print(f"Average wait time over {repeats} repeats per scenario\n")
    print(render_table(headers, rows, precision=2))
    print()
    finite = [r for r in ratios if np.isfinite(r)]
    print(f"Crossroads advantage: worst scenario {max(finite):.2f}X, "
          f"best {min(finite):.2f}X, mean {np.mean(finite):.2f}X")
    print("(paper: 1.24X for S1 down to 1.08X for S10, ~24% average "
          "wait-time reduction)")


if __name__ == "__main__":
    main()
