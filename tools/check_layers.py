#!/usr/bin/env python
"""Import-layering lint for the repro package.

Enforces the layered architecture documented in DESIGN.md: every
package is assigned a level, and a module may only *module-level*
import packages at a strictly lower level.  Function-level (lazy)
imports are the sanctioned escape hatch for the two deliberate
back-edges and are therefore not flagged:

* ``repro.vehicle.agent.make_vehicle`` resolves vehicle classes
  through ``repro.core.registry`` (vehicle -> core), and
* ``repro.core.registry`` lazily imports ``repro.core.policy`` to
  self-register the built-ins.

Run from the repository root::

    python tools/check_layers.py            # exit 1 on any violation
    python tools/check_layers.py --graph    # print the observed graph

No third-party dependencies; pure ``ast``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

#: Package (or top-level module) -> architectural level.  A package may
#: only module-level import packages with a strictly smaller level.
LAYERS: Dict[str, int] = {
    # Level 0 — substrate: the DES kernel, perf counters and the
    # observability layer (obs.events event log + tracer, obs.metrics
    # streaming time-series registry, obs.prom exporters).  des reaches
    # obs via duck-typed attributes (``env.obs``, ``env.metrics``),
    # never an import, so no same-level edge exists; obs imports
    # nothing from the package at all.
    "des": 0,
    "perf": 0,
    "obs": 0,
    # Level 1 — domain primitives: pure models with no protocol logic.
    "geometry": 1,
    "kinematics": 1,
    "timesync": 1,
    "sensors": 1,
    "network": 1,
    "faults": 1,
    # Level 2 — protocol machines (composable, endpoint-agnostic).
    "protocol": 2,
    # Level 3 — vehicle agents (compose protocol machines on a plant).
    "vehicle": 3,
    # Level 4 — traffic generation (spawns vehicles).
    "traffic": 4,
    # Level 5 — intersection managers + the policy registry.
    "core": 5,
    # Level 6 — the simulation world and experiment engines.
    "sim": 6,
    # Level 7 — layers over complete simulations: corridor networks of
    # intersections (grid), analysis/reporting over results, and the
    # declarative scenario DSL + safety oracle + fuzzer (scenarios).
    # All three are siblings; none module-level imports another
    # (scenarios reaches grid only through a lazy compile hook).
    "grid": 7,
    "analysis": 7,
    "scenarios": 7,
    # Level 8 — execution facades: the CLI, and the IM-as-a-service
    # asyncio server/client/load-generator stack (serve hosts the IM
    # core over real links; the CLI reaches it lazily inside command
    # handlers, so no same-level edge exists).
    "cli": 8,
    "serve": 8,
    # The repro/__init__.py + __main__.py facade re-exports everything.
    "<top>": 9,
}

#: Seam rules, finer-grained than LAYERS: for files whose full module
#: name matches a key (the module itself or anything beneath it), the
#: listed targets may not be imported at *any* level — lazy
#: function-level imports are banned too, because these guard an
#: abstraction seam, not import-time load order.  A target bans the
#: exact module/symbol and everything beneath it.
FORBIDDEN: Dict[str, Tuple[str, ...]] = {
    # The node-runtime engine is the shared substrate under both the
    # single-intersection World and the corridor GridWorld: it must
    # never know about the grid composition or the scenario DSL built
    # on top of it.
    "repro.sim.engine": ("repro.grid", "repro.scenarios"),
    # Simulation engines consume the wireless medium strictly through
    # the Transport seam (repro.network.transport.default_transport);
    # naming the in-process Channel — by module or by the re-exported
    # class — would pin the implementation the seam exists to hide.
    # repro.serve joins the ban list: worlds reach the socket fabric
    # only through the transport_factory injection seam, never by name.
    "repro.sim": (
        "repro.network.channel", "repro.network.Channel", "repro.serve",
    ),
    "repro.grid": (
        "repro.network.channel", "repro.network.Channel", "repro.serve",
    ),
}

ROOT_PACKAGE = "repro"


def _module_name(path: Path, src_root: Path) -> str:
    """Dotted module name of a source file (packages drop __init__)."""
    parts = list(path.relative_to(src_root).with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _matches(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


def _all_import_targets(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """Every imported dotted path in the file, at any nesting depth.

    ``from M import N`` yields both ``M`` and ``M.N`` so seam rules can
    ban a re-exported symbol as well as its home module.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level != 0 or node.module is None:
                continue
            yield node.lineno, node.module
            for alias in node.names:
                yield node.lineno, f"{node.module}.{alias.name}"


def _forbidden_violations(
    module: str, tree: ast.Module, path: Path
) -> Iterator[str]:
    rules = [
        banned
        for scope, banned in FORBIDDEN.items()
        if _matches(module, scope)
    ]
    if not rules:
        return
    for lineno, target in _all_import_targets(tree):
        for banned in rules:
            for entry in banned:
                if _matches(target, entry):
                    yield (
                        f"{path}:{lineno}: seam violation — {module} "
                        f"imports {target} (forbidden: {entry}); use the "
                        f"sanctioned abstraction instead (see "
                        f"tools/check_layers.py FORBIDDEN)"
                    )


def _package_of(path: Path, src_root: Path) -> str:
    parts = path.relative_to(src_root / ROOT_PACKAGE).parts
    if len(parts) == 1:  # repro/__init__.py, repro/__main__.py, repro/perf.py
        stem = Path(parts[0]).stem
        return stem if stem in LAYERS else "<top>"
    return parts[0]


def _module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level import statements, including those inside module-level
    ``if``/``try`` blocks (they still execute at import time)."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try)):
            stack.extend(getattr(node, "body", []))
            stack.extend(getattr(node, "orelse", []))
            stack.extend(getattr(node, "finalbody", []))
            for handler in getattr(node, "handlers", []):
                stack.extend(handler.body)


def _imported_packages(node: ast.stmt) -> Iterator[str]:
    if isinstance(node, ast.Import):
        names = [alias.name for alias in node.names]
    elif isinstance(node, ast.ImportFrom):
        if node.level != 0 or node.module is None:
            return  # relative imports stay inside a package
        names = [node.module]
    else:
        return
    for name in names:
        if name == ROOT_PACKAGE:
            yield "<top>"
        elif name.startswith(ROOT_PACKAGE + "."):
            yield name.split(".")[1]


def check(src_root: Path) -> Tuple[List[str], Dict[str, Set[str]]]:
    """Return (violations, observed package graph)."""
    violations: List[str] = []
    graph: Dict[str, Set[str]] = defaultdict(set)
    for path in sorted((src_root / ROOT_PACKAGE).rglob("*.py")):
        package = _package_of(path, src_root)
        if package not in LAYERS:
            violations.append(
                f"{path}: package {package!r} has no level in "
                f"tools/check_layers.py LAYERS — assign one"
            )
            continue
        level = LAYERS[package]
        tree = ast.parse(path.read_text(), filename=str(path))
        violations.extend(
            _forbidden_violations(_module_name(path, src_root), tree, path)
        )
        for node in _module_level_imports(tree):
            for target in _imported_packages(node):
                if target == package:
                    continue  # intra-package imports are free
                graph[package].add(target)
                target_level = LAYERS.get(target)
                if target_level is None:
                    violations.append(
                        f"{path}:{node.lineno}: imports unknown package "
                        f"repro.{target}"
                    )
                elif target_level >= level:
                    violations.append(
                        f"{path}:{node.lineno}: layer violation — "
                        f"{package} (level {level}) module-level imports "
                        f"repro.{target} (level {target_level}); move the "
                        f"import into the function that needs it or fix "
                        f"the layering"
                    )
    return violations, graph


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", default="src", help="source root (default: src)")
    parser.add_argument("--graph", action="store_true",
                        help="print the observed package import graph")
    args = parser.parse_args(argv)
    src_root = Path(args.src)
    if not (src_root / ROOT_PACKAGE).is_dir():
        print(f"error: {src_root / ROOT_PACKAGE} is not a directory",
              file=sys.stderr)
        return 2
    violations, graph = check(src_root)
    if args.graph:
        for package in sorted(graph, key=lambda p: (LAYERS.get(p, 99), p)):
            targets = ", ".join(sorted(graph[package]))
            print(f"  {package:10s} (L{LAYERS.get(package, '?')}) -> {targets}")
    if violations:
        print(f"{len(violations)} layer violation(s):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    n_files = sum(1 for _ in (src_root / ROOT_PACKAGE).rglob("*.py"))
    print(f"layering OK: {n_files} files, {len(LAYERS)} layers, "
          f"0 violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
