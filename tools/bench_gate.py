#!/usr/bin/env python3
"""Bench regression gate: diff fresh BENCH_*.json against baselines.

The committed ``BENCH_*.json`` files at the repo root are the
performance baselines; CI regenerates fresh copies (benches honour
``REPRO_BENCH_DIR``) and this gate diffs them key by key with
per-metric tolerances, failing the build on a regression instead of
letting it rot silently (the 1.04x parallel "speedup" sat unnoticed
for five PRs).

Keys are flattened to dot paths and classified:

* **time** (``*wall*``): wall-clock seconds — noisy and
  machine-dependent, lower is better; fresh must stay under
  ``baseline * time_tolerance``.
* **ratio-up** (``speedup*``, ``vehicles_per_s``): throughput-style,
  higher is better; fresh must stay above
  ``baseline / ratio_tolerance``.
* **rate** (``*hit_rate*``): cache hit rates in [0, 1]; fresh must
  stay above ``baseline - rate_slack``.
* **info** (``cpus``, ``pool_spawns``): machine facts, reported only.
* **exact** (everything else): deterministic counters, sim-time
  quantities and workload config — byte-equal or the gate fails,
  because a drift here is a behaviour change, not noise.

Stdlib only; importable (``compare``/``compare_files``/``main``) so
the tier-1 suite can pin that the gate passes on the committed
baselines and fails on a synthetic 2x regression.
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import sys
from typing import Dict, List, NamedTuple, Optional

__all__ = ["Finding", "Tolerances", "classify", "compare", "compare_files", "main"]

#: Keys reported but never gated: facts about the machine, plus the
#: serve bench's load-dependent raw tallies (sent/reject/timeout
#: counts and the live WC-RTD estimate vary with wall-clock jitter;
#: the gated signals are the sustained ``tps`` ratios, the ``*_wall_s``
#: latencies and the deterministic overload contract).
INFO_KEYS = frozenset({
    "cpus", "pool_spawns",
    "sent", "completed", "rejects", "timeouts",
    "reject_rate", "timeout_rate", "peak_backlog",
    "requests_served", "rtd_samples",
    "wc_rtd_estimate_s", "worst_service_s",
})


class Tolerances(NamedTuple):
    """Per-class gate tolerances (see the module docstring)."""

    time: float = 2.5
    ratio: float = 1.75
    rate_slack: float = 0.15


class Finding(NamedTuple):
    """One gated key's verdict."""

    file: str
    key: str
    kind: str
    baseline: object
    fresh: object
    ok: bool
    note: str = ""


def flatten(payload: Dict, prefix: str = "") -> Dict[str, object]:
    """Nested dicts -> dot-path leaves (lists stay as values)."""
    out: Dict[str, object] = {}
    for name, value in payload.items():
        key = f"{prefix}.{name}" if prefix else str(name)
        if isinstance(value, dict):
            out.update(flatten(value, key))
        else:
            out[key] = value
    return out


def classify(key: str) -> str:
    """Gate class of one flattened dot-path key."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf in INFO_KEYS:
        return "info"
    if "wall" in leaf:
        return "time"
    if leaf.startswith("speedup") or leaf in ("vehicles_per_s", "tps"):
        return "ratio_up"
    if "hit_rate" in leaf:
        return "rate"
    return "exact"


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check(kind: str, baseline: object, fresh: object,
           tolerances: Tolerances) -> (bool, str):
    if not (_numeric(baseline) and _numeric(fresh)):
        ok = baseline == fresh
        return ok, "" if ok else "value changed"
    base, new = float(baseline), float(fresh)
    if kind == "time":
        limit = base * tolerances.time
        if new <= limit or new <= 0.05:  # sub-50 ms: below timer noise
            return True, ""
        return False, f"slower than {tolerances.time:g}x baseline"
    if kind == "ratio_up":
        floor = base / tolerances.ratio
        if new >= floor:
            return True, ""
        return False, f"below baseline/{tolerances.ratio:g}"
    if kind == "rate":
        floor = base - tolerances.rate_slack
        if new >= floor:
            return True, ""
        return False, f"below baseline - {tolerances.rate_slack:g}"
    # exact: deterministic quantities must not drift at all.
    if math.isclose(base, new, rel_tol=0.0, abs_tol=0.0):
        return True, ""
    return False, "deterministic value drifted"


def compare(name: str, baseline: Dict, fresh: Dict,
            tolerances: Optional[Tolerances] = None) -> List[Finding]:
    """Gate one fresh payload against its baseline."""
    tolerances = tolerances if tolerances is not None else Tolerances()
    findings: List[Finding] = []
    flat_base = flatten(baseline)
    flat_fresh = flatten(fresh)
    for key in sorted(flat_base):
        kind = classify(key)
        if key not in flat_fresh:
            findings.append(Finding(name, key, kind, flat_base[key], None,
                                    False, "missing from fresh run"))
            continue
        if kind == "info":
            findings.append(Finding(name, key, kind, flat_base[key],
                                    flat_fresh[key], True, "informational"))
            continue
        ok, note = _check(kind, flat_base[key], flat_fresh[key], tolerances)
        findings.append(Finding(name, key, kind, flat_base[key],
                                flat_fresh[key], ok, note))
    for key in sorted(set(flat_fresh) - set(flat_base)):
        findings.append(Finding(name, key, "new", None, flat_fresh[key],
                                True, "not in baseline (informational)"))
    return findings


def compare_files(baseline_path: str, fresh_path: str,
                  tolerances: Optional[Tolerances] = None) -> List[Finding]:
    name = os.path.basename(baseline_path)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if not os.path.exists(fresh_path):
        return [Finding(name, "<file>", "exact", baseline_path, None, False,
                        f"fresh artefact {fresh_path} not produced")]
    with open(fresh_path) as handle:
        fresh = json.load(handle)
    return compare(name, baseline, fresh, tolerances)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff fresh BENCH_*.json against committed baselines "
                    "with per-metric tolerances")
    parser.add_argument("files", nargs="*",
                        help="artefact names to gate (default: every "
                             "BENCH_*.json in the baseline dir)")
    parser.add_argument("--baseline", default=".", metavar="DIR",
                        help="directory with the committed baselines "
                             "(default: .)")
    parser.add_argument("--fresh", default=".", metavar="DIR",
                        help="directory with the freshly produced artefacts "
                             "(default: .)")
    parser.add_argument("--time-tolerance", type=float, default=2.5,
                        help="wall-clock keys may grow to this multiple of "
                             "baseline (default: 2.5)")
    parser.add_argument("--ratio-tolerance", type=float, default=1.75,
                        help="speedup-style keys may shrink to baseline over "
                             "this factor (default: 1.75)")
    parser.add_argument("--rate-slack", type=float, default=0.15,
                        help="hit-rate keys may drop by this absolute amount "
                             "(default: 0.15)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print regressions")
    args = parser.parse_args(argv)

    names = args.files or sorted(
        os.path.basename(path)
        for path in glob.glob(os.path.join(args.baseline, "BENCH_*.json"))
    )
    if not names:
        print(f"no BENCH_*.json baselines under {args.baseline}",
              file=sys.stderr)
        return 2
    tolerances = Tolerances(time=args.time_tolerance,
                            ratio=args.ratio_tolerance,
                            rate_slack=args.rate_slack)

    failures = 0
    for name in names:
        findings = compare_files(os.path.join(args.baseline, name),
                                 os.path.join(args.fresh, name), tolerances)
        bad = [f for f in findings if not f.ok]
        failures += len(bad)
        status = "FAIL" if bad else "ok"
        print(f"{status:4s} {name}: {len(findings)} keys, "
              f"{len(bad)} regression(s)")
        for finding in findings:
            if args.quiet and finding.ok:
                continue
            mark = " " if finding.ok else "!"
            print(f"  {mark} [{finding.kind:8s}] {finding.key:45s} "
                  f"baseline={finding.baseline!r} fresh={finding.fresh!r}"
                  + (f"  <- {finding.note}" if finding.note else ""))
    if failures:
        print(f"\nbench gate: {failures} regression(s) — see '!' rows above",
              file=sys.stderr)
        return 1
    print("\nbench gate: all baselines within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
